package geo

import (
	"errors"
	"strings"
)

// The standard geohash base-32 alphabet (no a, i, l, o).
const geohashAlphabet = "0123456789bcdefghjkmnpqrstuvwxyz"

// MaxGeohashPrecision is the longest geohash this codec emits. Twelve
// characters resolve to roughly 3.7 cm x 1.9 cm, far below the paper's
// "about one square metre" CSC resolution.
const MaxGeohashPrecision = 12

// CSCPrecision is the geohash length used for Crypto-Spatial
// Coordinates. Ten characters give a cell of about 1.2 m x 0.6 m,
// matching the paper's one-square-metre claim.
const CSCPrecision = 10

var geohashDecodeTable = func() [256]int8 {
	var t [256]int8
	for i := range t {
		t[i] = -1
	}
	for i := 0; i < len(geohashAlphabet); i++ {
		t[geohashAlphabet[i]] = int8(i)
	}
	return t
}()

// Errors returned by the geohash codec.
var (
	ErrGeohashEmpty     = errors.New("geo: empty geohash")
	ErrGeohashTooLong   = errors.New("geo: geohash longer than max precision")
	ErrGeohashAlphabet  = errors.New("geo: invalid geohash character")
	ErrGeohashPrecision = errors.New("geo: precision out of range [1, 12]")
)

// Encode returns the geohash of p at the given precision (number of
// base-32 characters).
func Encode(p Point, precision int) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	if precision < 1 || precision > MaxGeohashPrecision {
		return "", ErrGeohashPrecision
	}
	var (
		sb         strings.Builder
		minLat     = -90.0
		maxLat     = 90.0
		minLng     = -180.0
		maxLng     = 180.0
		evenBit    = true
		currentBit = 0
		ch         = 0
	)
	sb.Grow(precision)
	for sb.Len() < precision {
		if evenBit {
			mid := (minLng + maxLng) / 2
			if p.Lng >= mid {
				ch = ch<<1 | 1
				minLng = mid
			} else {
				ch <<= 1
				maxLng = mid
			}
		} else {
			mid := (minLat + maxLat) / 2
			if p.Lat >= mid {
				ch = ch<<1 | 1
				minLat = mid
			} else {
				ch <<= 1
				maxLat = mid
			}
		}
		evenBit = !evenBit
		currentBit++
		if currentBit == 5 {
			sb.WriteByte(geohashAlphabet[ch])
			currentBit = 0
			ch = 0
		}
	}
	return sb.String(), nil
}

// MustEncode is Encode for callers with known-valid input; it panics on
// error and is intended for tests and constants.
func MustEncode(p Point, precision int) string {
	s, err := Encode(p, precision)
	if err != nil {
		panic(err)
	}
	return s
}

// Box is the bounding rectangle a geohash denotes.
type Box struct {
	MinLng, MinLat float64
	MaxLng, MaxLat float64
}

// Center returns the centre point of the box, which is the canonical
// decoded location of a geohash.
func (b Box) Center() Point {
	return Point{Lng: (b.MinLng + b.MaxLng) / 2, Lat: (b.MinLat + b.MaxLat) / 2}
}

// Contains reports whether the box contains p (inclusive bounds).
func (b Box) Contains(p Point) bool {
	return p.Lng >= b.MinLng && p.Lng <= b.MaxLng &&
		p.Lat >= b.MinLat && p.Lat <= b.MaxLat
}

// DecodeBox returns the bounding box of a geohash.
func DecodeBox(hash string) (Box, error) {
	if len(hash) == 0 {
		return Box{}, ErrGeohashEmpty
	}
	if len(hash) > MaxGeohashPrecision {
		return Box{}, ErrGeohashTooLong
	}
	box := Box{MinLng: -180, MaxLng: 180, MinLat: -90, MaxLat: 90}
	evenBit := true
	for i := 0; i < len(hash); i++ {
		v := geohashDecodeTable[hash[i]]
		if v < 0 {
			return Box{}, ErrGeohashAlphabet
		}
		for bit := 4; bit >= 0; bit-- {
			set := (v>>uint(bit))&1 == 1
			if evenBit {
				mid := (box.MinLng + box.MaxLng) / 2
				if set {
					box.MinLng = mid
				} else {
					box.MaxLng = mid
				}
			} else {
				mid := (box.MinLat + box.MaxLat) / 2
				if set {
					box.MinLat = mid
				} else {
					box.MaxLat = mid
				}
			}
			evenBit = !evenBit
		}
	}
	return box, nil
}

// Decode returns the centre point of the geohash cell.
func Decode(hash string) (Point, error) {
	box, err := DecodeBox(hash)
	if err != nil {
		return Point{}, err
	}
	return box.Center(), nil
}

// Valid reports whether hash is a well-formed geohash.
func Valid(hash string) bool {
	if len(hash) == 0 || len(hash) > MaxGeohashPrecision {
		return false
	}
	for i := 0; i < len(hash); i++ {
		if geohashDecodeTable[hash[i]] < 0 {
			return false
		}
	}
	return true
}

// Direction identifies one of the four lateral neighbours of a cell.
type Direction int

// The four lateral directions.
const (
	North Direction = iota
	South
	East
	West
)

// Neighbor returns the geohash of the adjacent cell in the given
// direction, at the same precision. It decodes to the cell centre,
// steps one cell width/height, and re-encodes; stepping across the
// antimeridian wraps, stepping over a pole returns the input unchanged.
func Neighbor(hash string, dir Direction) (string, error) {
	box, err := DecodeBox(hash)
	if err != nil {
		return "", err
	}
	c := box.Center()
	dLng := box.MaxLng - box.MinLng
	dLat := box.MaxLat - box.MinLat
	switch dir {
	case North:
		c.Lat += dLat
	case South:
		c.Lat -= dLat
	case East:
		c.Lng += dLng
	case West:
		c.Lng -= dLng
	}
	if c.Lat > 90 || c.Lat < -90 {
		return hash, nil // pole: no neighbour, return self
	}
	if c.Lng > 180 {
		c.Lng -= 360
	} else if c.Lng < -180 {
		c.Lng += 360
	}
	return Encode(c, len(hash))
}

// Neighbors returns the geohashes of the (up to) eight surrounding
// cells, useful for proximity witness checks in the Sybil guard.
func Neighbors(hash string) ([]string, error) {
	n, err := Neighbor(hash, North)
	if err != nil {
		return nil, err
	}
	s, err := Neighbor(hash, South)
	if err != nil {
		return nil, err
	}
	e, err := Neighbor(hash, East)
	if err != nil {
		return nil, err
	}
	w, err := Neighbor(hash, West)
	if err != nil {
		return nil, err
	}
	ne, err := Neighbor(n, East)
	if err != nil {
		return nil, err
	}
	nw, err := Neighbor(n, West)
	if err != nil {
		return nil, err
	}
	se, err := Neighbor(s, East)
	if err != nil {
		return nil, err
	}
	sw, err := Neighbor(s, West)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, 8)
	seen := map[string]bool{hash: true}
	for _, h := range []string{n, ne, e, se, s, sw, w, nw} {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out, nil
}

// CellSizeMeters returns the approximate width and height in metres of
// a geohash cell at the given precision, measured at the equator.
func CellSizeMeters(precision int) (width, height float64, err error) {
	if precision < 1 || precision > MaxGeohashPrecision {
		return 0, 0, ErrGeohashPrecision
	}
	bits := 5 * precision
	lngBits := (bits + 1) / 2
	latBits := bits / 2
	widthDeg := 360.0 / float64(int64(1)<<uint(lngBits))
	heightDeg := 180.0 / float64(int64(1)<<uint(latBits))
	origin := Point{}
	return origin.DistanceMeters(Point{Lng: widthDeg}),
		origin.DistanceMeters(Point{Lat: heightDeg}),
		nil
}
