package geo

import (
	"testing"
	"time"
)

func TestNewCSC(t *testing.T) {
	c, err := NewCSC(Point{Lng: 114.1795, Lat: 22.3050}, "ab12cd")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Geohash) != CSCPrecision {
		t.Fatalf("geohash length %d, want %d", len(c.Geohash), CSCPrecision)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewCSCErrors(t *testing.T) {
	if _, err := NewCSC(Point{Lng: 114, Lat: 22}, ""); err != ErrCSCAddress {
		t.Errorf("want address error, got %v", err)
	}
	if _, err := NewCSC(Point{Lat: 91}, "addr"); err != ErrLatitudeRange {
		t.Errorf("want latitude error, got %v", err)
	}
}

func TestCSCStringParseRoundTrip(t *testing.T) {
	c, err := NewCSC(Point{Lng: 114.1795, Lat: 22.3050}, "deadbeef01")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCSC(c.String())
	if err != nil {
		t.Fatalf("ParseCSC(%q): %v", c.String(), err)
	}
	if parsed != c {
		t.Fatalf("round trip mismatch: %v vs %v", parsed, c)
	}
}

func TestParseCSCErrors(t *testing.T) {
	for _, bad := range []string{"", "nohash", "@addr", "hash@", "ALL@addr"} {
		if _, err := ParseCSC(bad); err == nil {
			t.Errorf("ParseCSC(%q) should fail", bad)
		}
	}
}

func TestCSCSameCell(t *testing.T) {
	p := Point{Lng: 114.1795, Lat: 22.3050}
	a, _ := NewCSC(p, "alice")
	b, _ := NewCSC(p, "bob")
	far, _ := NewCSC(Point{Lng: 113.9, Lat: 22.2}, "carol")
	if !a.SameCell(b) {
		t.Error("same point must be same cell regardless of owner")
	}
	if a.SameCell(far) {
		t.Error("distant points must not share a cell")
	}
}

func TestCSCWithinPrefix(t *testing.T) {
	c, _ := NewCSC(Point{Lng: 114.1795, Lat: 22.3050}, "a")
	if !c.WithinPrefix(c.Geohash[:4]) {
		t.Error("CSC must be within its own prefix")
	}
	if c.WithinPrefix("zzzz") {
		t.Error("CSC must not match unrelated prefix")
	}
}

func TestCSCPoint(t *testing.T) {
	orig := Point{Lng: 114.1795, Lat: 22.3050}
	c, _ := NewCSC(orig, "a")
	got, err := c.Point()
	if err != nil {
		t.Fatal(err)
	}
	if orig.DistanceMeters(got) > 2.0 {
		t.Fatalf("CSC centre %v is %v m from original", got, orig.DistanceMeters(got))
	}
}

func TestReportValidate(t *testing.T) {
	good := Report{
		Location:  Point{Lng: 114.1795, Lat: 22.3050},
		Timestamp: time.Date(2019, 8, 5, 18, 0, 0, 0, time.UTC),
		Address:   "addr1",
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Address = ""
	if bad.Validate() == nil {
		t.Error("empty address should fail")
	}
	bad = good
	bad.Timestamp = time.Time{}
	if bad.Validate() == nil {
		t.Error("zero timestamp should fail")
	}
	bad = good
	bad.Location.Lat = 100
	if bad.Validate() == nil {
		t.Error("bad latitude should fail")
	}
}

func TestReportCSC(t *testing.T) {
	r := Report{
		Location:  Point{Lng: 114.1795, Lat: 22.3050},
		Timestamp: time.Now(),
		Address:   "addr1",
	}
	c, err := r.CSC()
	if err != nil {
		t.Fatal(err)
	}
	if c.Address != "addr1" {
		t.Fatalf("CSC address %q", c.Address)
	}
}
