package geo

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Known geohash vectors (checked against the reference implementation).
var geohashVectors = []struct {
	lng, lat  float64
	precision int
	hash      string
}{
	{-5.6, 42.6, 5, "ezs42"},
	{-0.1262, 51.5001, 9, "gcpuvpk1g"},
	{114.1795, 22.3050, 6, "wecnyh"},
	{0, 0, 1, "s"},
	{-180, -90, 12, "000000000000"},
}

func TestEncodeKnownVectors(t *testing.T) {
	for _, v := range geohashVectors {
		got, err := Encode(Point{Lng: v.lng, Lat: v.lat}, v.precision)
		if err != nil {
			t.Fatalf("Encode(%v,%v): %v", v.lng, v.lat, err)
		}
		if got != v.hash {
			t.Errorf("Encode(%v,%v,%d) = %q, want %q", v.lng, v.lat, v.precision, got, v.hash)
		}
	}
}

func TestDecodeContainsOriginal(t *testing.T) {
	for _, v := range geohashVectors {
		box, err := DecodeBox(v.hash)
		if err != nil {
			t.Fatalf("DecodeBox(%q): %v", v.hash, err)
		}
		if !box.Contains(Point{Lng: v.lng, Lat: v.lat}) {
			t.Errorf("box of %q does not contain original point", v.hash)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(Point{Lat: 91}, 6); err != ErrLatitudeRange {
		t.Errorf("want latitude error, got %v", err)
	}
	if _, err := Encode(Point{}, 0); err != ErrGeohashPrecision {
		t.Errorf("want precision error, got %v", err)
	}
	if _, err := Encode(Point{}, 13); err != ErrGeohashPrecision {
		t.Errorf("want precision error, got %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeBox(""); err != ErrGeohashEmpty {
		t.Errorf("want empty error, got %v", err)
	}
	if _, err := DecodeBox(strings.Repeat("s", 13)); err != ErrGeohashTooLong {
		t.Errorf("want too-long error, got %v", err)
	}
	if _, err := DecodeBox("abc"); err != ErrGeohashAlphabet { // 'a' is not in the alphabet
		t.Errorf("want alphabet error, got %v", err)
	}
}

func TestValid(t *testing.T) {
	if !Valid("wecnv3") {
		t.Error("wecnv3 should be valid")
	}
	for _, bad := range []string{"", "a", "ALL-CAPS", strings.Repeat("0", 13)} {
		if Valid(bad) {
			t.Errorf("%q should be invalid", bad)
		}
	}
}

// Property: encode -> decode lands inside the original cell, and
// re-encoding the decoded centre reproduces the hash exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(rlng, rlat float64, p uint8) bool {
		precision := int(p%MaxGeohashPrecision) + 1
		pt := Point{Lng: clampLng(rlng), Lat: clampLat(rlat)}
		h, err := Encode(pt, precision)
		if err != nil {
			return false
		}
		center, err := Decode(h)
		if err != nil {
			return false
		}
		h2, err := Encode(center, precision)
		if err != nil {
			return false
		}
		box, err := DecodeBox(h)
		if err != nil {
			return false
		}
		return h == h2 && box.Contains(pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: longer prefixes refine, i.e. the box at precision k+1 is
// contained in the box at precision k (the CSC hierarchy property).
func TestGeohashHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		pt := Point{Lng: rng.Float64()*360 - 180, Lat: rng.Float64()*180 - 90}
		full := MustEncode(pt, MaxGeohashPrecision)
		prev, err := DecodeBox(full[:1])
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= MaxGeohashPrecision; k++ {
			cur, err := DecodeBox(full[:k])
			if err != nil {
				t.Fatal(err)
			}
			if cur.MinLng < prev.MinLng || cur.MaxLng > prev.MaxLng ||
				cur.MinLat < prev.MinLat || cur.MaxLat > prev.MaxLat {
				t.Fatalf("precision %d box not nested in %d box", k, k-1)
			}
			prev = cur
		}
	}
}

func TestNeighborAdjacency(t *testing.T) {
	h := MustEncode(Point{Lng: 114.1795, Lat: 22.3050}, 7)
	for _, dir := range []Direction{North, South, East, West} {
		nb, err := Neighbor(h, dir)
		if err != nil {
			t.Fatalf("Neighbor(%v): %v", dir, err)
		}
		if nb == h {
			t.Fatalf("neighbour in dir %v equals origin", dir)
		}
		// Centres of adjacent cells are one cell apart.
		a, _ := Decode(h)
		b, _ := Decode(nb)
		w, ht, _ := CellSizeMeters(7)
		d := a.DistanceMeters(b)
		if d > 2*(w+ht) {
			t.Fatalf("dir %v: neighbour %v m away, cell is %vx%v m", dir, d, w, ht)
		}
	}
}

func TestNeighborInverse(t *testing.T) {
	h := MustEncode(Point{Lng: 114.1795, Lat: 22.3050}, 8)
	n, err := Neighbor(h, North)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Neighbor(n, South)
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("north then south: got %q want %q", back, h)
	}
}

func TestNeighborPoleClamped(t *testing.T) {
	h := MustEncode(Point{Lng: 0, Lat: 89.999999}, 4)
	n, err := Neighbor(h, North)
	if err != nil {
		t.Fatal(err)
	}
	if n != h {
		t.Fatalf("north of the pole cell should return itself, got %q", n)
	}
}

func TestNeighborAntimeridianWraps(t *testing.T) {
	h := MustEncode(Point{Lng: 179.99, Lat: 0}, 3)
	e, err := Neighbor(h, East)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := Decode(e)
	if pt.Lng > -170 && pt.Lng < 170 {
		t.Fatalf("east across antimeridian should wrap, centre at %v", pt)
	}
}

func TestNeighborsCount(t *testing.T) {
	h := MustEncode(Point{Lng: 114.1795, Lat: 22.3050}, 7)
	ns, err := Neighbors(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 8 {
		t.Fatalf("expected 8 distinct neighbours mid-map, got %d: %v", len(ns), ns)
	}
	seen := map[string]bool{}
	for _, n := range ns {
		if n == h {
			t.Error("neighbours must not include origin")
		}
		if seen[n] {
			t.Errorf("duplicate neighbour %q", n)
		}
		seen[n] = true
	}
}

func TestCellSizeMonotone(t *testing.T) {
	prevW, prevH := 1e18, 1e18
	for p := 1; p <= MaxGeohashPrecision; p++ {
		w, h, err := CellSizeMeters(p)
		if err != nil {
			t.Fatal(err)
		}
		if w >= prevW || h > prevH {
			t.Fatalf("cell size must shrink with precision: p=%d w=%v h=%v", p, w, h)
		}
		prevW, prevH = w, h
	}
	if _, _, err := CellSizeMeters(0); err != ErrGeohashPrecision {
		t.Errorf("want precision error, got %v", err)
	}
}

func TestCSCPrecisionIsAboutOneMeter(t *testing.T) {
	w, h, err := CellSizeMeters(CSCPrecision)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "The resolution of CSC is about one square meter".
	if w*h > 2.0 || w*h < 0.1 {
		t.Fatalf("CSC cell is %.2f x %.2f m = %.2f m^2, want about one", w, h, w*h)
	}
}
