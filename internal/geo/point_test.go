package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewPointValid(t *testing.T) {
	p, err := NewPoint(114.17, 22.30) // Hong Kong, the paper's home turf
	if err != nil {
		t.Fatalf("NewPoint: %v", err)
	}
	if p.Lng != 114.17 || p.Lat != 22.30 {
		t.Fatalf("point mangled: %v", p)
	}
}

func TestNewPointInvalid(t *testing.T) {
	cases := []struct {
		lng, lat float64
		want     error
	}{
		{0, 91, ErrLatitudeRange},
		{0, -91, ErrLatitudeRange},
		{181, 0, ErrLongitudeRange},
		{-181, 0, ErrLongitudeRange},
		{math.NaN(), 0, ErrLongitudeRange},
		{0, math.NaN(), ErrLatitudeRange},
	}
	for _, c := range cases {
		if _, err := NewPoint(c.lng, c.lat); err != c.want {
			t.Errorf("NewPoint(%v,%v) err=%v want %v", c.lng, c.lat, err, c.want)
		}
	}
}

func TestPointEqual(t *testing.T) {
	a := Point{Lng: 1.5, Lat: 2.5}
	if !a.Equal(a) {
		t.Error("point not equal to itself")
	}
	if a.Equal(Point{Lng: 1.5, Lat: 2.5000001}) {
		t.Error("strict equality must not tolerate epsilon differences")
	}
}

func TestDistanceMetersKnown(t *testing.T) {
	// Hong Kong PolyU to HKUST is roughly 7.7 km.
	polyU := Point{Lng: 114.1795, Lat: 22.3050}
	hkust := Point{Lng: 114.2638, Lat: 22.3363}
	d := polyU.DistanceMeters(hkust)
	if d < 7000 || d > 10000 {
		t.Fatalf("PolyU-HKUST distance %v m, want ~8.7 km", d)
	}
	if polyU.DistanceMeters(polyU) != 0 {
		t.Fatal("distance to self must be zero")
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lng1, lat1, lng2, lat2 float64) bool {
		a := Point{Lng: clampLng(lng1), Lat: clampLat(lat1)}
		b := Point{Lng: clampLng(lng2), Lat: clampLat(lat2)}
		d1, d2 := a.DistanceMeters(b), b.DistanceMeters(a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clampLng(v float64) float64 { return clamp(v, -180, 180) }
func clampLat(v float64) float64 { return clamp(v, -90, 90) }

func clamp(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	// Fold arbitrary floats into [lo, hi] deterministically.
	r := math.Mod(v, hi-lo)
	if r < 0 {
		r += hi - lo
	}
	return lo + r
}

func TestRegionContains(t *testing.T) {
	r := NewRegion(Point{Lng: 114.0, Lat: 22.0}, Point{Lng: 114.5, Lat: 22.5})
	if !r.Contains(Point{Lng: 114.25, Lat: 22.25}) {
		t.Error("centre point should be inside")
	}
	if !r.Contains(Point{Lng: 114.0, Lat: 22.0}) {
		t.Error("boundary should be inclusive")
	}
	if r.Contains(Point{Lng: 113.9, Lat: 22.25}) {
		t.Error("west of region should be outside")
	}
	if r.Contains(Point{Lng: 114.25, Lat: 22.6}) {
		t.Error("north of region should be outside")
	}
}

func TestNewRegionNormalizesCorners(t *testing.T) {
	a := NewRegion(Point{Lng: 114.5, Lat: 22.5}, Point{Lng: 114.0, Lat: 22.0})
	b := NewRegion(Point{Lng: 114.0, Lat: 22.0}, Point{Lng: 114.5, Lat: 22.5})
	if a != b {
		t.Fatalf("corner order must not matter: %+v vs %+v", a, b)
	}
}

func TestRegionDimensions(t *testing.T) {
	r := NewRegion(Point{Lng: 114.0, Lat: 22.0}, Point{Lng: 114.1, Lat: 22.1})
	w, h := r.WidthMeters(), r.HeightMeters()
	// 0.1 degree is ~11.1 km of latitude; longitude shrinks by cos(lat).
	if h < 10500 || h > 11700 {
		t.Errorf("height %v m, want ~11.1 km", h)
	}
	if w < 9500 || w > 10800 {
		t.Errorf("width %v m, want ~10.3 km at lat 22", w)
	}
}

func TestRegionIsZero(t *testing.T) {
	if !(Region{}).IsZero() {
		t.Error("zero region should report IsZero")
	}
	if NewRegion(Point{Lng: 1}, Point{Lng: 2}).IsZero() {
		t.Error("non-zero region should not report IsZero")
	}
}

func TestPointString(t *testing.T) {
	got := Point{Lng: 114.17, Lat: 22.3}.String()
	if got != "(114.170000, 22.300000)" {
		t.Fatalf("String() = %q", got)
	}
}
