// Package geo implements the geographic substrate of G-PBFT: WGS-84
// points, a full geohash codec, Crypto-Spatial Coordinates (CSC) that
// bind a location to a chain address, distances, and rectangular
// deployment regions.
//
// The paper (Section II-C) models a piece of geographic information as
// the triple <longitude, latitude, timestamp>; Section III-B3 associates
// it with a blockchain address through a CSC, "a hierarchical standard"
// whose resolution is about one square metre.
package geo

import (
	"errors"
	"fmt"
	"math"
)

// Earth's mean radius in metres, used by Haversine distance.
const earthRadiusMeters = 6371000.0

// Errors returned by point validation.
var (
	ErrLatitudeRange  = errors.New("geo: latitude out of range [-90, 90]")
	ErrLongitudeRange = errors.New("geo: longitude out of range [-180, 180]")
)

// Point is a WGS-84 coordinate. Longitude first, mirroring the paper's
// <longitude, latitude, timestamp> ordering.
type Point struct {
	Lng float64
	Lat float64
}

// NewPoint validates the coordinates and returns the point.
func NewPoint(lng, lat float64) (Point, error) {
	p := Point{Lng: lng, Lat: lat}
	return p, p.Validate()
}

// Validate reports whether the point lies on the globe.
func (p Point) Validate() error {
	if math.IsNaN(p.Lat) || p.Lat < -90 || p.Lat > 90 {
		return ErrLatitudeRange
	}
	if math.IsNaN(p.Lng) || p.Lng < -180 || p.Lng > 180 {
		return ErrLongitudeRange
	}
	return nil
}

// String renders the point as "(lng, lat)" with six decimals (~0.1 m).
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lng, p.Lat)
}

// Equal reports exact coordinate equality. The paper's Algorithm 1
// compares reported locations for strict equality (lines 9 and 21), so
// no epsilon is applied here; use DistanceMeters for tolerant checks.
func (p Point) Equal(q Point) bool {
	return p.Lng == q.Lng && p.Lat == q.Lat
}

// DistanceMeters returns the Haversine great-circle distance to q.
func (p Point) DistanceMeters(q Point) float64 {
	lat1 := p.Lat * math.Pi / 180
	lat2 := q.Lat * math.Pi / 180
	dLat := (q.Lat - p.Lat) * math.Pi / 180
	dLng := (q.Lng - p.Lng) * math.Pi / 180

	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLng/2)*math.Sin(dLng/2)
	c := 2 * math.Atan2(math.Sqrt(a), math.Sqrt(1-a))
	return earthRadiusMeters * c
}

// Region is a rectangular (lng/lat aligned) deployment area. The paper's
// threat model assumes "all IoT devices ... are worked within a small
// physical area", so geographic authentication rejects reports outside
// the region configured in the genesis block.
type Region struct {
	MinLng, MinLat float64
	MaxLng, MaxLat float64
}

// NewRegion builds a region from two corners, normalising their order.
func NewRegion(a, b Point) Region {
	return Region{
		MinLng: math.Min(a.Lng, b.Lng),
		MinLat: math.Min(a.Lat, b.Lat),
		MaxLng: math.Max(a.Lng, b.Lng),
		MaxLat: math.Max(a.Lat, b.Lat),
	}
}

// Contains reports whether p lies inside the region (inclusive).
func (r Region) Contains(p Point) bool {
	return p.Lng >= r.MinLng && p.Lng <= r.MaxLng &&
		p.Lat >= r.MinLat && p.Lat <= r.MaxLat
}

// Center returns the midpoint of the region.
func (r Region) Center() Point {
	return Point{Lng: (r.MinLng + r.MaxLng) / 2, Lat: (r.MinLat + r.MaxLat) / 2}
}

// WidthMeters approximates the east-west extent at the region's centre.
func (r Region) WidthMeters() float64 {
	c := r.Center()
	return Point{Lng: r.MinLng, Lat: c.Lat}.DistanceMeters(Point{Lng: r.MaxLng, Lat: c.Lat})
}

// HeightMeters approximates the north-south extent.
func (r Region) HeightMeters() float64 {
	c := r.Center()
	return Point{Lng: c.Lng, Lat: r.MinLat}.DistanceMeters(Point{Lng: c.Lng, Lat: r.MaxLat})
}

// IsZero reports whether the region is the zero value (no constraint).
func (r Region) IsZero() bool {
	return r.MinLng == 0 && r.MinLat == 0 && r.MaxLng == 0 && r.MaxLat == 0
}
