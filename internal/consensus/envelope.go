// Package consensus defines the machinery shared by the PBFT baseline
// and G-PBFT: the signed message envelope, the action list an engine
// emits, the event-driven engine interface that both the discrete-event
// simulator and the real-time runner drive, and committee membership
// arithmetic (f, quorums, primary rotation).
//
// Engines are pure state machines: they never spawn goroutines, read
// wall clocks, or touch sockets. All inputs arrive through OnEnvelope /
// OnTimer / OnRequest with an explicit timestamp, and all outputs are
// returned as Actions. This is what makes the same engine runnable both
// under the deterministic simulator and over real TCP.
package consensus

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync/atomic"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
)

// MsgKind discriminates protocol payload types inside an envelope.
type MsgKind uint8

// Message kinds across both protocols. PBFT kinds are also used inside
// a G-PBFT era; the Era* kinds belong to the era-switch layer.
const (
	KindRequest MsgKind = iota + 1
	KindPrePrepare
	KindPrepare
	KindCommit
	KindCheckpoint
	KindViewChange
	KindNewView
	KindEraSwitch
	KindBlockSync
	// KindTxReject is an admission-control reply: a node telling a
	// submitter that its transaction was not accepted and when to retry.
	KindTxReject
	// KindRelay is a gossip relay frame: a batch of hop-counted inner
	// envelopes being epidemically forwarded on behalf of their
	// originators. The frame itself is unsealed — each inner envelope
	// carries its originator's signature, and the relayer is attributed
	// by the authenticated channel it arrived on.
	KindRelay
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindPrePrepare:
		return "pre-prepare"
	case KindPrepare:
		return "prepare"
	case KindCommit:
		return "commit"
	case KindCheckpoint:
		return "checkpoint"
	case KindViewChange:
		return "view-change"
	case KindNewView:
		return "new-view"
	case KindEraSwitch:
		return "era-switch"
	case KindBlockSync:
		return "block-sync"
	case KindTxReject:
		return "tx-reject"
	case KindRelay:
		return "relay"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Payload is a protocol message body with a canonical encoding.
type Payload interface {
	codec.Marshaler
	Kind() MsgKind
}

// Envelope is a signed, attributed protocol message: the paper's threat
// model lets adversaries inject their own messages but not forge or
// tamper with others', which the signature enforces.
type Envelope struct {
	MsgKind   MsgKind
	From      gcrypto.Address
	FromPub   []byte
	Body      []byte
	Signature []byte

	// wireSize caches the serialized size (an envelope is immutable
	// once sealed; broadcasts meter it once per recipient).
	wireSize int

	// verifiedSum memoizes a successful signature check: it is the
	// digest of every field the check covered, recorded at the moment
	// the ed25519 verification passed. The engines re-Open stored vote
	// envelopes on every quorum recount (O(n²) per slot at committee
	// scale); the memo collapses each recount to one cheap hash
	// comparison. Binding the memo to the content digest (rather than a
	// bare flag) means any mutation after the fact — even of an
	// in-memory struct — invalidates it, and only success is cached, so
	// accept/reject semantics stay byte-exact with the serial path.
	verified    bool
	verifiedSum gcrypto.Hash

	// relayEntries memoizes the decoded batch of a KindRelay body so
	// the pre-verify worker's decode (which also warms every inner
	// envelope's verify memo) is the one the event loop reuses. Same
	// ownership rule as the verify memo: one writer, strictly before
	// the single event loop reads.
	relayEntries []RelayEntry
	relayErr     error
	relayDone    bool
}

// Errors returned by envelope operations.
var (
	ErrEnvelopeSig  = errors.New("consensus: envelope signature invalid")
	ErrEnvelopeKind = errors.New("consensus: envelope kind mismatch")
)

func envelopeDigest(kind MsgKind, from gcrypto.Address, body []byte) []byte {
	w := codec.NewWriter(64 + len(body))
	w.String("gpbft/envelope/v1")
	w.Uint8(uint8(kind))
	w.Raw(from[:])
	w.WriteBytes(body)
	return w.Bytes()
}

// Seal encodes and signs a payload into an envelope. A locally sealed
// envelope is verified by construction.
func Seal(kp *gcrypto.KeyPair, p Payload) *Envelope {
	body := codec.Encode(p)
	e := &Envelope{
		MsgKind: p.Kind(),
		From:    kp.Address(),
		FromPub: append([]byte(nil), kp.Public()...),
		Body:    body,
	}
	e.Signature = kp.Sign(envelopeDigest(e.MsgKind, e.From, body))
	e.markVerified()
	return e
}

// verifySum digests every field Verify covers (including the public
// key and signature, which envelopeDigest omits), so a memoized
// verdict can be tied to the exact bytes that were checked.
func (e *Envelope) verifySum() gcrypto.Hash {
	w := codec.NewWriter(96 + len(e.Body))
	w.Uint8(uint8(e.MsgKind))
	w.Raw(e.From[:])
	w.WriteBytes(e.FromPub)
	w.WriteBytes(e.Body)
	w.WriteBytes(e.Signature)
	return gcrypto.HashBytes(w.Bytes())
}

func (e *Envelope) markVerified() {
	e.verifiedSum = e.verifySum()
	e.verified = true
}

// verifyMemo gates the success memo; the serial ablation baseline in
// gpbft-bench turns it off to reproduce seed behaviour.
var verifyMemo atomic.Bool

func init() { verifyMemo.Store(true) }

// SetVerifyMemo toggles envelope-verification memoization; returns the
// previous setting. Memoization is semantics-preserving (only success
// over immutable bytes is cached); the switch exists so benchmarks can
// measure the serial path.
func SetVerifyMemo(on bool) bool { return verifyMemo.Swap(on) }

// Verify checks the envelope signature and sender binding. A
// successful check is memoized: envelopes are immutable once sealed,
// and the single event loop that owns an envelope is the only writer.
func (e *Envelope) Verify() error {
	if e.verified && verifyMemo.Load() && e.verifiedSum == e.verifySum() {
		return nil
	}
	if len(e.FromPub) != ed25519.PublicKeySize {
		return ErrEnvelopeSig
	}
	if err := gcrypto.Verify(e.FromPub, e.From, envelopeDigest(e.MsgKind, e.From, e.Body), e.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrEnvelopeSig, err)
	}
	e.markVerified()
	return nil
}

// MarshalCanonical appends the wire encoding of the envelope.
func (e *Envelope) MarshalCanonical(w *codec.Writer) {
	w.Uint8(uint8(e.MsgKind))
	w.Raw(e.From[:])
	w.WriteBytes(e.FromPub)
	w.WriteBytes(e.Body)
	w.WriteBytes(e.Signature)
}

// UnmarshalCanonical decodes an envelope.
func (e *Envelope) UnmarshalCanonical(r *codec.Reader) error {
	e.MsgKind = MsgKind(r.Uint8())
	r.RawInto(e.From[:])
	e.FromPub = r.ReadBytes()
	e.Body = r.ReadBytes()
	e.Signature = r.ReadBytes()
	return r.Err()
}

// EncodeEnvelope returns the wire bytes of e.
func EncodeEnvelope(e *Envelope) []byte { return codec.Encode(e) }

// DecodeEnvelope parses wire bytes into an envelope.
func DecodeEnvelope(b []byte) (*Envelope, error) {
	r := codec.NewReader(b)
	var e Envelope
	if err := e.UnmarshalCanonical(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &e, nil
}

// WireSize returns the serialized size of the envelope in bytes; the
// simulator meters traffic with it. The value is cached: envelopes are
// immutable once sealed.
func (e *Envelope) WireSize() int {
	if e.wireSize == 0 {
		e.wireSize = len(EncodeEnvelope(e))
	}
	return e.wireSize
}

// Open verifies the envelope, checks its kind, and decodes the body
// into dst (which must match the kind's payload type).
func Open(e *Envelope, want MsgKind, dst interface {
	UnmarshalCanonical(*codec.Reader) error
}) error {
	if e.MsgKind != want {
		return ErrEnvelopeKind
	}
	if err := e.Verify(); err != nil {
		return err
	}
	r := codec.NewReader(e.Body)
	if err := dst.UnmarshalCanonical(r); err != nil {
		return err
	}
	return r.Finish()
}

// requestSealCheck restores the seed's behaviour of verifying the
// relayer's seal on request envelopes. Off by default — the payload is
// self-authenticating (see OpenUnverified) — and turned on by the
// serial ablation baseline so it measures the seed's verification
// stack, not a mixed one.
var requestSealCheck atomic.Bool

// SetRequestSealCheck toggles relayer-seal verification on request
// envelopes; returns the previous setting.
func SetRequestSealCheck(on bool) bool { return requestSealCheck.Swap(on) }

// RequestSealCheck reports whether request envelopes verify the
// relayer's seal.
func RequestSealCheck() bool { return requestSealCheck.Load() }

// OpenUnverified decodes the body without checking the envelope seal.
// It is only sound for payloads that authenticate themselves — a
// relayed transaction carries its own signature over its full content,
// so the relayer's seal adds no integrity and one ed25519 check per
// relay hop per receiver. Consensus votes MUST keep using Open: their
// authenticity is exactly the seal.
func OpenUnverified(e *Envelope, want MsgKind, dst interface {
	UnmarshalCanonical(*codec.Reader) error
}) error {
	if e.MsgKind != want {
		return ErrEnvelopeKind
	}
	r := codec.NewReader(e.Body)
	if err := dst.UnmarshalCanonical(r); err != nil {
		return err
	}
	return r.Finish()
}
