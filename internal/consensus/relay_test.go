package consensus

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
)

// kindPayload is a Payload with a selectable kind, for building relay
// batches of vote-like envelopes.
type kindPayload struct {
	K    MsgKind
	Data []byte
}

func (p *kindPayload) Kind() MsgKind                    { return p.K }
func (p *kindPayload) MarshalCanonical(w *codec.Writer) { w.WriteBytes(p.Data) }
func (p *kindPayload) UnmarshalCanonical(r *codec.Reader) error {
	p.Data = r.ReadBytes()
	return r.Err()
}

func sealEntry(t *testing.T, idx int, hop uint8, data string) RelayEntry {
	t.Helper()
	kp := gcrypto.DeterministicKeyPair(idx)
	env := Seal(kp, &kindPayload{K: KindPrepare, Data: []byte(data)})
	return RelayEntry{Hop: hop, Wire: EncodeEnvelope(env), Env: env}
}

func TestRelayBodyRoundTrip(t *testing.T) {
	in := []RelayEntry{
		sealEntry(t, 1, 1, "a"),
		sealEntry(t, 2, 3, "b"),
		sealEntry(t, 3, DefaultMaxRelayHops, "c"),
	}
	out, err := DecodeRelayBody(EncodeRelayBody(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Hop != in[i].Hop || !bytes.Equal(out[i].Wire, in[i].Wire) {
			t.Fatalf("entry %d mismatch", i)
		}
		if out[i].Env.MsgKind != KindPrepare || out[i].Env.From != in[i].Env.From {
			t.Fatalf("entry %d inner envelope mismatch", i)
		}
		if err := out[i].Env.Verify(); err != nil {
			t.Fatalf("entry %d inner seal: %v", i, err)
		}
	}
}

func TestRelayBodyRejectsHostileFrames(t *testing.T) {
	good := sealEntry(t, 1, 1, "x")
	nested := RelayEntry{Hop: 1}
	nested.Wire = EncodeEnvelope(NewRelayEnvelope(gcrypto.DeterministicKeyPair(9).Address(), []RelayEntry{good}))

	cases := []struct {
		name string
		body []byte
	}{
		{"empty body", nil},
		{"bad magic", func() []byte {
			w := codec.NewWriter(16)
			w.String("gpbft/nope/v9")
			w.Count(1)
			return w.Bytes()
		}()},
		{"empty batch", func() []byte {
			w := codec.NewWriter(16)
			w.String(relayMagic)
			w.Count(0)
			return w.Bytes()
		}()},
		{"hop zero", EncodeRelayBody([]RelayEntry{{Hop: 0, Wire: good.Wire}})},
		{"hop past bound", EncodeRelayBody([]RelayEntry{{Hop: maxRelayHopBound + 1, Wire: good.Wire}})},
		{"undecodable inner envelope", EncodeRelayBody([]RelayEntry{{Hop: 1, Wire: []byte{0xff, 0x01}}})},
		{"nested relay frame", EncodeRelayBody([]RelayEntry{nested})},
		{"oversized count header", func() []byte {
			w := codec.NewWriter(16)
			w.String(relayMagic)
			w.Count(MaxRelayEntries + 1)
			return w.Bytes()
		}()},
		{"trailing bytes", append(EncodeRelayBody([]RelayEntry{good}), 0x00)},
		{"truncated", EncodeRelayBody([]RelayEntry{good})[:8]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeRelayBody(tc.body); !errors.Is(err, ErrRelayFrame) {
				t.Fatalf("err %v, want ErrRelayFrame", err)
			}
		})
	}
}

// TestRelayBodyRejectsNonMinimal pins the strict-codec property the
// fuzz target leans on: widening a varint without changing its value
// must flip the frame from valid to rejected.
func TestRelayBodyRejectsNonMinimal(t *testing.T) {
	body := EncodeRelayBody([]RelayEntry{sealEntry(t, 1, 1, "x")})
	if _, err := DecodeRelayBody(body); err != nil {
		t.Fatal(err)
	}
	// The magic-string length (14) is the first varint: re-encode it as
	// the two-byte non-minimal form 0x8e 0x00.
	if body[0] != byte(len(relayMagic)) {
		t.Fatalf("layout assumption broken: first byte %#x", body[0])
	}
	wide := append([]byte{body[0] | 0x80, 0x00}, body[1:]...)
	if _, err := DecodeRelayBody(wide); err == nil {
		t.Fatal("non-minimal varint accepted")
	}
}

func TestRelayEnvelopeIsUnsealedAndMemoized(t *testing.T) {
	relayer := gcrypto.DeterministicKeyPair(5)
	frame := NewRelayEnvelope(relayer.Address(), []RelayEntry{sealEntry(t, 1, 1, "v")})
	if frame.MsgKind != KindRelay || len(frame.Signature) != 0 || len(frame.FromPub) != 0 {
		t.Fatalf("relay frame should be unsealed: %+v", frame)
	}
	if err := frame.Verify(); err == nil {
		t.Fatal("unsealed relay frame must not pass Verify")
	}
	// Wire round trip: the decode memo makes repeated access cheap and
	// stable.
	decoded, err := DecodeEnvelope(EncodeEnvelope(frame))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := decoded.RelayEntries()
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := decoded.RelayEntries()
	if len(e1) != 1 || &e1[0] != &e2[0] {
		t.Fatal("RelayEntries not memoized")
	}
	if _, err := sealEntry(t, 1, 1, "v").Env.RelayEntries(); !errors.Is(err, ErrEnvelopeKind) {
		t.Fatal("RelayEntries on a non-relay envelope must fail")
	}
}

func TestRelayReceiveSuppressesAndForwards(t *testing.T) {
	self := gcrypto.DeterministicKeyPair(100)
	peers := []gcrypto.Address{
		gcrypto.DeterministicKeyPair(101).Address(),
		gcrypto.DeterministicKeyPair(102).Address(),
		gcrypto.DeterministicKeyPair(103).Address(),
	}
	r := NewRelay(RelayConfig{Self: self.Address(), Peers: peers, Fanout: 2, Seed: 7})

	a := sealEntry(t, 1, 1, "a")
	b := sealEntry(t, 2, uint8(DefaultMaxRelayHops), "b") // at the hop bound: deliver, don't forward
	frame := NewRelayEnvelope(peers[0], []RelayEntry{a, b})

	novel, err := r.Receive(0, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(novel) != 2 {
		t.Fatalf("novel %d, want 2", len(novel))
	}
	// Second delivery of the same frame: fully suppressed.
	novel, err = r.Receive(0, frame)
	if err != nil || len(novel) != 0 {
		t.Fatalf("duplicate frame delivered %d envelopes (err %v)", len(novel), err)
	}

	sent := map[gcrypto.Address]int{}
	var entries int
	r.Flush(0, func(to gcrypto.Address, env *Envelope) {
		sent[to]++
		es, err := env.RelayEntries()
		if err != nil {
			t.Fatal(err)
		}
		entries += len(es)
		for _, e := range es {
			if e.Hop != a.Hop+1 {
				t.Fatalf("forwarded hop %d, want %d", e.Hop, a.Hop+1)
			}
		}
	})
	if len(sent) != 2 {
		t.Fatalf("flush hit %d peers, want fanout 2", len(sent))
	}
	if entries != 2 { // only `a` re-forwards (b hit the hop bound), to 2 targets
		t.Fatalf("forwarded %d entries, want 2", entries)
	}
	st := r.Stats()
	if st.Delivered != 2 || st.Suppressed != 2 || st.Dropped != 1 || st.ForwardedFrames != 2 {
		t.Fatalf("stats %+v", st)
	}
	// Nothing pending: flush is a no-op and counters hold still.
	r.Flush(0, func(gcrypto.Address, *Envelope) { t.Fatal("flush with empty queue sent a frame") })
}

func TestRelayBroadcastSuppressesEcho(t *testing.T) {
	self := gcrypto.DeterministicKeyPair(100)
	peer := gcrypto.DeterministicKeyPair(101)
	r := NewRelay(RelayConfig{Self: self.Address(), Peers: []gcrypto.Address{peer.Address()}, Fanout: 1, Seed: 1})

	env := Seal(self, &kindPayload{K: KindCommit, Data: []byte("own-vote")})
	r.Broadcast(0, env)
	if !r.HasPending() {
		t.Fatal("broadcast did not queue")
	}
	r.Flush(0, func(gcrypto.Address, *Envelope) {})

	// The vote comes back around the gossip ring: it must not re-enter.
	echo := NewRelayEnvelope(peer.Address(), []RelayEntry{{Hop: 2, Wire: EncodeEnvelope(env), Env: env}})
	novel, err := r.Receive(0, echo)
	if err != nil || len(novel) != 0 {
		t.Fatalf("own broadcast echoed back into the engine (novel=%d err=%v)", len(novel), err)
	}
}

func TestRelayFlushSplitsOversizedBatches(t *testing.T) {
	self := gcrypto.DeterministicKeyPair(100)
	peer := gcrypto.DeterministicKeyPair(101).Address()
	r := NewRelay(RelayConfig{Self: self.Address(), Peers: []gcrypto.Address{peer}, Fanout: 1, Seed: 1})
	total := MaxRelayEntries + 10
	for i := 0; i < total; i++ {
		r.Broadcast(0, Seal(self, &kindPayload{K: KindPrepare, Data: []byte(fmt.Sprintf("v%d", i))}))
	}
	var frames, entries int
	r.Flush(0, func(_ gcrypto.Address, env *Envelope) {
		es, err := env.RelayEntries()
		if err != nil {
			t.Fatal(err)
		}
		if len(es) > MaxRelayEntries {
			t.Fatalf("frame carries %d entries, cap %d", len(es), MaxRelayEntries)
		}
		frames++
		entries += len(es)
	})
	if frames != 2 || entries != total {
		t.Fatalf("flush sent %d frames / %d entries, want 2 / %d", frames, entries, total)
	}
}

func TestRelaySetPeersFiltersSelfAndRetunesFanout(t *testing.T) {
	self := gcrypto.DeterministicKeyPair(1)
	var committee []gcrypto.Address
	for i := 1; i <= 8; i++ {
		committee = append(committee, gcrypto.DeterministicKeyPair(i).Address())
	}
	r := NewRelay(RelayConfig{Self: self.Address(), Peers: committee, Seed: 1})
	if r.PeerCount() != 7 {
		t.Fatalf("peer count %d, want 7 (self filtered)", r.PeerCount())
	}
	if want := autoFanout(7); r.Fanout() != want {
		t.Fatalf("auto fanout %d, want %d", r.Fanout(), want)
	}
	r.SetPeers(committee[:4])
	if r.PeerCount() != 3 || r.Fanout() != autoFanout(3) {
		t.Fatalf("after shrink: peers %d fanout %d", r.PeerCount(), r.Fanout())
	}

	fixed := NewRelay(RelayConfig{Self: self.Address(), Peers: committee, Fanout: 2, Seed: 1})
	fixed.SetPeers(committee[:5])
	if fixed.Fanout() != 2 {
		t.Fatal("explicit fanout must survive SetPeers")
	}
}

func TestAutoFanoutGrowsLogarithmically(t *testing.T) {
	cases := map[int]int{1: 3, 3: 3, 7: 4, 15: 5, 21: 6, 45: 7, 63: 7, 64: 8}
	for n, want := range cases {
		if got := autoFanout(n); got != want {
			t.Fatalf("autoFanout(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRelayPickTargetsIsUniformEnough(t *testing.T) {
	self := gcrypto.DeterministicKeyPair(0)
	var peers []gcrypto.Address
	for i := 1; i <= 10; i++ {
		peers = append(peers, gcrypto.DeterministicKeyPair(i).Address())
	}
	r := NewRelay(RelayConfig{Self: self.Address(), Peers: peers, Fanout: 3, Seed: 42})
	counts := map[gcrypto.Address]int{}
	const draws = 2000
	for i := 0; i < draws; i++ {
		targets := r.pickTargets()
		if len(targets) != 3 {
			t.Fatalf("draw %d: %d targets", i, len(targets))
		}
		seen := map[gcrypto.Address]bool{}
		for _, to := range targets {
			if to == self.Address() {
				t.Fatal("picked self")
			}
			if seen[to] {
				t.Fatal("picked the same peer twice in one draw")
			}
			seen[to] = true
			counts[to]++
		}
	}
	// Expected 600 draws per peer; a wildly skewed selector (always the
	// same subset) fails, honest randomness passes with huge margin.
	for addr, c := range counts {
		if c < 300 || c > 900 {
			t.Fatalf("peer %s drawn %d times, expected ~600", addr.Short(), c)
		}
	}
	if len(counts) != 10 {
		t.Fatalf("only %d peers ever drawn", len(counts))
	}
}
