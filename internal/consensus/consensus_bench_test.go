package consensus

import (
	"testing"

	"gpbft/internal/gcrypto"
)

func BenchmarkSeal(b *testing.B) {
	kp := gcrypto.DeterministicKeyPair(1)
	p := &fakePayload{N: 42, S: "prepare"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Seal(kp, p)
	}
}

func BenchmarkOpen(b *testing.B) {
	kp := gcrypto.DeterministicKeyPair(1)
	env := Seal(kp, &fakePayload{N: 42, S: "prepare"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var got fakePayload
		if err := Open(env, KindRequest, &got); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvelopeWire(b *testing.B) {
	kp := gcrypto.DeterministicKeyPair(1)
	env := Seal(kp, &fakePayload{N: 42, S: "prepare"})
	wire := EncodeEnvelope(env)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelope(wire); err != nil {
			b.Fatal(err)
		}
	}
}
