package consensus

import (
	"testing"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/types"
)

// fakePayload is a minimal Payload for envelope tests.
type fakePayload struct {
	N uint64
	S string
}

func (p *fakePayload) Kind() MsgKind { return KindRequest }

func (p *fakePayload) MarshalCanonical(w *codec.Writer) {
	w.Uint64(p.N)
	w.String(p.S)
}

func (p *fakePayload) UnmarshalCanonical(r *codec.Reader) error {
	p.N = r.Uint64()
	p.S = r.ReadString()
	return r.Err()
}

func TestEnvelopeSealVerifyOpen(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	env := Seal(kp, &fakePayload{N: 42, S: "hello"})
	if err := env.Verify(); err != nil {
		t.Fatal(err)
	}
	var got fakePayload
	if err := Open(env, KindRequest, &got); err != nil {
		t.Fatal(err)
	}
	if got.N != 42 || got.S != "hello" {
		t.Fatalf("decoded %+v", got)
	}
}

func TestEnvelopeTamperDetected(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	env := Seal(kp, &fakePayload{N: 1, S: "x"})

	bad := *env
	bad.Body = append([]byte(nil), env.Body...)
	bad.Body[0] ^= 0xFF
	if bad.Verify() == nil {
		t.Error("body tamper must fail")
	}

	bad = *env
	bad.MsgKind = KindCommit
	if bad.Verify() == nil {
		t.Error("kind tamper must fail")
	}

	bad = *env
	bad.From = gcrypto.DeterministicKeyPair(2).Address()
	if bad.Verify() == nil {
		t.Error("sender tamper must fail")
	}

	bad = *env
	bad.FromPub = []byte{1, 2, 3}
	if bad.Verify() != ErrEnvelopeSig {
		t.Error("short pubkey must fail with ErrEnvelopeSig")
	}
}

func TestEnvelopeWireRoundTrip(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(3)
	env := Seal(kp, &fakePayload{N: 9, S: "wire"})
	wire := EncodeEnvelope(env)
	if env.WireSize() != len(wire) {
		t.Errorf("WireSize %d != len %d", env.WireSize(), len(wire))
	}
	got, err := DecodeEnvelope(wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	if got.MsgKind != env.MsgKind || got.From != env.From {
		t.Fatal("fields mangled in round trip")
	}
}

func TestDecodeEnvelopeErrors(t *testing.T) {
	if _, err := DecodeEnvelope(nil); err == nil {
		t.Error("empty buffer must fail")
	}
	kp := gcrypto.DeterministicKeyPair(3)
	wire := EncodeEnvelope(Seal(kp, &fakePayload{}))
	if _, err := DecodeEnvelope(append(wire, 1)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestOpenKindMismatch(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	env := Seal(kp, &fakePayload{})
	var got fakePayload
	if err := Open(env, KindCommit, &got); err != ErrEnvelopeKind {
		t.Fatalf("want ErrEnvelopeKind, got %v", err)
	}
}

func TestMsgKindString(t *testing.T) {
	kinds := []MsgKind{KindRequest, KindPrePrepare, KindPrepare, KindCommit,
		KindCheckpoint, KindViewChange, KindNewView, KindEraSwitch, KindBlockSync}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/dup name %q", k, s)
		}
		seen[s] = true
	}
	if MsgKind(200).String() == "" {
		t.Error("unknown kind should render")
	}
}

func testCommittee(t *testing.T, n int) *Committee {
	t.Helper()
	var infos []types.EndorserInfo
	for i := 0; i < n; i++ {
		kp := gcrypto.DeterministicKeyPair(i)
		infos = append(infos, types.EndorserInfo{
			Address: kp.Address(), PubKey: kp.Public(),
			Geohash: geo.MustEncode(geo.Point{Lng: 114, Lat: 22}, geo.CSCPrecision),
		})
	}
	c, err := NewCommittee(infos)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCommitteeQuorums(t *testing.T) {
	// Quorum is ⌈(n+f+1)/2⌉: equal to 2f+1 at n = 3f+1, larger
	// otherwise so that any two quorums intersect in f+1 members.
	cases := []struct{ n, f, quorum int }{
		{4, 1, 3}, {5, 1, 4}, {6, 1, 4}, {7, 2, 5}, {8, 2, 6}, {10, 3, 7},
		{40, 13, 27}, {202, 67, 135},
	}
	for _, c := range cases {
		com := testCommittee(t, c.n)
		if com.Size() != c.n || com.F() != c.f || com.Quorum() != c.quorum {
			t.Errorf("n=%d: size=%d f=%d quorum=%d, want f=%d quorum=%d",
				c.n, com.Size(), com.F(), com.Quorum(), c.f, c.quorum)
		}
		if com.WeakQuorum() != c.f+1 {
			t.Errorf("n=%d: weak quorum %d", c.n, com.WeakQuorum())
		}
	}
}

func TestCommitteeEmpty(t *testing.T) {
	if _, err := NewCommittee(nil); err != ErrEmptyCommittee {
		t.Fatalf("want ErrEmptyCommittee, got %v", err)
	}
}

func TestCommitteeSortedAndStable(t *testing.T) {
	a := testCommittee(t, 7)
	// Same members shuffled must give identical order.
	infos := a.Members()
	infos[0], infos[3] = infos[3], infos[0]
	b, err := NewCommittee(infos)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Size(); i++ {
		if a.Member(i).Address != b.Member(i).Address {
			t.Fatal("committee order must be canonical")
		}
	}
	addrs := a.Addresses()
	for i := 1; i < len(addrs); i++ {
		if !addrs[i-1].Less(addrs[i]) {
			t.Fatal("addresses must be sorted")
		}
	}
}

func TestCommitteePrimaryRotation(t *testing.T) {
	c := testCommittee(t, 4)
	seen := map[gcrypto.Address]bool{}
	for v := uint64(0); v < 4; v++ {
		seen[c.Primary(v)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("4 views should rotate through 4 primaries, got %d", len(seen))
	}
	if c.Primary(0) != c.Primary(4) {
		t.Fatal("rotation must wrap")
	}
}

func TestCommitteeMembership(t *testing.T) {
	c := testCommittee(t, 4)
	in := gcrypto.DeterministicKeyPair(0).Address()
	out := gcrypto.DeterministicKeyPair(99).Address()
	if !c.IsMember(in) || c.IsMember(out) {
		t.Fatal("membership lookup wrong")
	}
	if c.IndexOf(out) != -1 {
		t.Fatal("IndexOf outsider must be -1")
	}
	if c.IndexOf(in) < 0 || c.Member(c.IndexOf(in)).Address != in {
		t.Fatal("IndexOf/Member inconsistent")
	}
	if c.PubKey(out) != nil {
		t.Fatal("outsider pubkey must be nil")
	}
	if c.PubKey(in) == nil {
		t.Fatal("member pubkey missing")
	}
	if len(c.Keys()) != 4 {
		t.Fatal("Keys() size wrong")
	}
}

func TestCommitteeOthers(t *testing.T) {
	c := testCommittee(t, 4)
	self := gcrypto.DeterministicKeyPair(0).Address()
	others := c.Others(self)
	if len(others) != 3 {
		t.Fatalf("others %d, want 3", len(others))
	}
	for _, a := range others {
		if a == self {
			t.Fatal("others must exclude self")
		}
	}
}

// Property: any two quorums of size 2f+1 intersect in at least f+1
// members — the intersection argument PBFT safety rests on. Verified
// numerically across committee sizes.
func TestQuorumIntersectionProperty(t *testing.T) {
	for n := 4; n <= 202; n++ {
		f := (n - 1) / 3
		quorum := QuorumFor(n)
		// Two quorums can miss each other by at most n - quorum members
		// each; their smallest possible intersection is:
		minIntersect := 2*quorum - n
		if minIntersect < f+1 {
			t.Fatalf("n=%d: two quorums may intersect in %d < f+1=%d members",
				n, minIntersect, f+1)
		}
		// And a quorum must always be formable from honest members.
		honest := n - f
		if honest < quorum {
			t.Fatalf("n=%d: %d honest members cannot form a %d-quorum", n, honest, quorum)
		}
	}
}

func TestQuorumForMatchesCommittee(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7, 9, 40, 202} {
		com := testCommittee(t, n)
		if QuorumFor(n) != com.Quorum() {
			t.Fatalf("n=%d: QuorumFor=%d, Committee.Quorum=%d", n, QuorumFor(n), com.Quorum())
		}
	}
}

func TestOrderedCommitteeRejectsDuplicates(t *testing.T) {
	infos := testCommittee(t, 4).Members()
	infos[1] = infos[0]
	if _, err := NewOrderedCommittee(infos); err == nil {
		t.Fatal("duplicate member must be rejected")
	}
}

func TestOrderedCommitteePreservesOrder(t *testing.T) {
	infos := testCommittee(t, 5).Members()
	// Reverse the canonical order; the ordered constructor must keep it.
	for i, j := 0, len(infos)-1; i < j; i, j = i+1, j-1 {
		infos[i], infos[j] = infos[j], infos[i]
	}
	com, err := NewOrderedCommittee(infos)
	if err != nil {
		t.Fatal(err)
	}
	for i := range infos {
		if com.Member(i).Address != infos[i].Address {
			t.Fatal("ordered committee must preserve the given order")
		}
	}
	if com.Primary(0) != infos[0].Address {
		t.Fatal("primary rotation must follow the given order")
	}
}
