package consensus

import (
	"time"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// Time is a timestamp relative to the start of the run. The simulator
// supplies virtual time; the real-time runner supplies time.Since(t0).
type Time = time.Duration

// TimerID identifies a pending timer set by an engine.
type TimerID uint64

// Action is an output of an engine step, executed by the runner.
type Action interface{ isAction() }

// Send transmits an envelope to one node.
type Send struct {
	To  gcrypto.Address
	Env *Envelope
}

// Broadcast transmits an envelope to every node in To (the engine
// decides the audience — usually the committee minus itself).
type Broadcast struct {
	To  []gcrypto.Address
	Env *Envelope
}

// CommitBlock delivers a decided block, in sequence order, for the
// runtime to append to the chain.
type CommitBlock struct {
	Block *types.Block
	// Applied marks a block the engine already applied to the chain
	// itself (the block-sync path): the runtime must still persist and
	// observe it, but must not apply it a second time.
	Applied bool
}

// StartTimer asks the runner to fire OnTimer(id) after Delay.
type StartTimer struct {
	ID    TimerID
	Delay time.Duration
}

// StopTimer cancels a pending timer; firing a stopped timer is a no-op
// for the runner, engines must also tolerate spurious fires.
type StopTimer struct {
	ID TimerID
}

// EraSwitched reports that the engine completed an era switch; the
// runtime uses it to re-register committee membership and metrics.
type EraSwitched struct {
	Era       uint64
	Committee []gcrypto.Address
}

// SnapshotInstalled reports that the engine replaced its chain state
// wholesale from a verified snapshot (fast sync): history below Height
// was never applied block-by-block on this node. The runtime uses it to
// reset persistence that mirrors per-block commits (block log, height
// counters) to the new base.
type SnapshotInstalled struct {
	Era    uint64
	Height uint64
}

func (Send) isAction()              {}
func (Broadcast) isAction()         {}
func (CommitBlock) isAction()       {}
func (StartTimer) isAction()        {}
func (StopTimer) isAction()         {}
func (EraSwitched) isAction()       {}
func (SnapshotInstalled) isAction() {}

// Engine is an event-driven consensus state machine.
type Engine interface {
	// Init starts the engine and returns its first actions (timers,
	// initial broadcasts).
	Init(now Time) []Action
	// OnEnvelope feeds a received message.
	OnEnvelope(now Time, env *Envelope) []Action
	// OnTimer fires a timer the engine previously started.
	OnTimer(now Time, id TimerID) []Action
	// OnRequest submits a transaction arriving at this node (from a
	// local client or forwarded by the runtime).
	OnRequest(now Time, tx *types.Transaction) []Action
}

// CommitNotifiable is implemented by engines that want a callback once
// the runtime has APPLIED committed blocks to the chain. The engine's
// own commit actions run before the chain advances, so a primary that
// proposes strictly on top of the committed head needs this second
// chance to keep the pipeline moving when no further input arrives.
type CommitNotifiable interface {
	OnCommitApplied(now Time) []Action
}

// Application is the runtime surface an engine drives blocks through:
// building a block proposal from the mempool and validating a proposal
// from a peer. Implementations live in the node runtime.
type Application interface {
	// BuildBlock assembles a proposal for the given era/view/seq on top
	// of the current head. It may return an empty block.
	BuildBlock(now Time, era, view, seq uint64) *types.Block
	// ValidateBlock checks a proposal received in a pre-prepare.
	ValidateBlock(b *types.Block) error
}
