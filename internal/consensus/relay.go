package consensus

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"gpbft/internal/codec"
	"gpbft/internal/gcrypto"
)

// Gossip relay: epidemic dissemination of consensus traffic. Instead
// of the originator writing one copy of every envelope to all n−1
// peers (O(n²) messages per slot across the committee), each node
// queues what it originates or first delivers and periodically flushes
// the queue as ONE batched relay frame to a fanout-f random subset of
// peers. Epidemic spreading reaches the whole committee in O(log n)
// hops with high probability, the batch amortises per-message channel
// costs, and the dupemap keeps re-deliveries off the engines.
const (
	relayMagic = "gpbft/relay/v1"

	// DefaultMaxRelayHops bounds epidemic propagation depth; log₂ of any
	// plausible committee plus slack. A frame arriving at hop h re-queues
	// its novel entries at h+1 and stops forwarding at the bound.
	DefaultMaxRelayHops = 8
	// maxRelayHopBound is the decode-time sanity cap on the hop counter.
	maxRelayHopBound = 64
	// MaxRelayEntries bounds entries per frame; an oversized pending
	// queue is split across frames.
	MaxRelayEntries = 1024
	// DefaultRelayFlush is the batching interval: lower bounds dissemination
	// latency added per hop, upper bounds how many frames per second each
	// node sends (fanout / interval, independent of committee size).
	DefaultRelayFlush = Time(20 * time.Millisecond)
	// DefaultRelayFanout is used when RelayConfig.Fanout is zero and the
	// peer count is unknown at construction; SetPeers recomputes
	// ceil(log₂(n+1))+1 thereafter.
	DefaultRelayFanout = 3
)

// RelayTimerID is the reserved timer identity for relay flush ticks.
// Engine TimerAllocators hand out small sequential IDs starting at 1,
// so a high fixed bit can never collide.
const RelayTimerID = TimerID(1) << 62

// ErrRelayFrame reports a malformed relay frame.
var ErrRelayFrame = errors.New("consensus: invalid relay frame")

// RelayEntry is one hop-counted inner envelope inside a relay frame.
// Wire holds the inner envelope's canonical bytes: relaying re-uses
// the originator's exact encoding, so the digest — and therefore the
// dupemap key and any evidence derived from the bytes — is identical
// at every hop.
type RelayEntry struct {
	Hop  uint8
	Wire []byte
	Env  *Envelope
}

// EncodeRelayBody builds the canonical body of a relay frame.
func EncodeRelayBody(entries []RelayEntry) []byte {
	w := codec.NewWriter(64)
	w.String(relayMagic)
	w.Count(len(entries))
	for i := range entries {
		w.Uint8(entries[i].Hop)
		w.WriteBytes(entries[i].Wire)
	}
	return w.Bytes()
}

// DecodeRelayBody parses and validates a relay frame body. Strictness
// matches the evidence codec: non-minimal varints are rejected by the
// reader, trailing bytes by Finish, and structurally hostile frames
// (empty batch, hop counter past any plausible propagation depth,
// nested relay frames, inner envelopes that don't decode) by explicit
// checks here, so a Byzantine relayer cannot smuggle unparseable or
// recursive payloads past the dupemap.
func DecodeRelayBody(body []byte) ([]RelayEntry, error) {
	r := codec.NewReader(body)
	if magic := r.ReadString(); magic != relayMagic {
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRelayFrame, err)
		}
		return nil, fmt.Errorf("%w: bad magic %q", ErrRelayFrame, magic)
	}
	n := r.Count()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRelayFrame, err)
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrRelayFrame)
	}
	if n > MaxRelayEntries {
		return nil, fmt.Errorf("%w: %d entries exceeds cap %d", ErrRelayFrame, n, MaxRelayEntries)
	}
	entries := make([]RelayEntry, 0, n)
	for i := 0; i < n; i++ {
		hop := r.Uint8()
		wire := r.ReadBytes()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRelayFrame, err)
		}
		if hop == 0 || hop > maxRelayHopBound {
			return nil, fmt.Errorf("%w: hop %d out of range", ErrRelayFrame, hop)
		}
		env, err := DecodeEnvelope(wire)
		if err != nil {
			return nil, fmt.Errorf("%w: inner envelope: %v", ErrRelayFrame, err)
		}
		if env.MsgKind == KindRelay {
			return nil, fmt.Errorf("%w: nested relay frame", ErrRelayFrame)
		}
		entries = append(entries, RelayEntry{Hop: hop, Wire: wire, Env: env})
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRelayFrame, err)
	}
	return entries, nil
}

// RelayEntries decodes a KindRelay envelope's batch, memoized under the
// same single-writer-before-event-loop rule as the verify memo: the
// transport's pre-verify worker decodes (and verifies inner envelopes)
// off the hot path, and the event loop reuses that result.
func (e *Envelope) RelayEntries() ([]RelayEntry, error) {
	if e.MsgKind != KindRelay {
		return nil, ErrEnvelopeKind
	}
	if !e.relayDone {
		e.relayEntries, e.relayErr = DecodeRelayBody(e.Body)
		e.relayDone = true
	}
	return e.relayEntries, e.relayErr
}

// NewRelayEnvelope wraps a batch of entries in an UNSEALED envelope.
// The frame carries no signature by design: each inner envelope keeps
// its originator's seal (Byzantine accountability names the
// originator), and the relayer is attributed by the authenticated
// channel the frame arrives on — the signed TCP handshake identity or
// the simulated sender. A relay frame must therefore never be passed
// to Verify; receivers unwrap it and verify the inner envelopes.
func NewRelayEnvelope(relayer gcrypto.Address, entries []RelayEntry) *Envelope {
	return &Envelope{
		MsgKind: KindRelay,
		From:    relayer,
		Body:    EncodeRelayBody(entries),

		relayEntries: entries,
		relayDone:    true,
	}
}

// RelayConfig parameterises a node's relay.
type RelayConfig struct {
	Self  gcrypto.Address
	Peers []gcrypto.Address // committee including or excluding self; self is filtered

	// Fanout is the number of random peers each flush targets; 0 means
	// ceil(log₂(peers+1))+1, recomputed on every SetPeers.
	Fanout int
	// MaxHops bounds propagation depth; 0 means DefaultMaxRelayHops.
	MaxHops int
	// FlushEvery is the batching interval; 0 means DefaultRelayFlush.
	FlushEvery Time

	// Dupemap tuning; zeros select the dupemap defaults.
	DupeTTL    Time
	DupeRounds int
	DupeCap    int

	// Seed drives target selection. Each node must use a distinct seed
	// (derive from the cluster seed and the node index) or every node
	// picks the same "random" targets and the epidemic degenerates.
	Seed int64
}

// RelayStats is a point-in-time snapshot of relay counters; all fields
// are maintained atomically so metrics scrapes don't synchronise with
// the event loop.
type RelayStats struct {
	// ForwardedFrames counts relay frames sent (each flush sends the
	// same frame to Fanout targets; every copy counts).
	ForwardedFrames uint64
	// ForwardedEntries counts inner envelopes across those frames.
	ForwardedEntries uint64
	// Suppressed counts inner envelopes dropped as dupemap hits.
	Suppressed uint64
	// Dropped counts inner envelopes not re-forwarded because the hop
	// bound was reached (they were still delivered locally).
	Dropped uint64
	// Delivered counts novel inner envelopes handed to the engine.
	Delivered uint64
	// DupemapEntries / DupemapGenerations are occupancy gauges.
	DupemapEntries     uint64
	DupemapGenerations uint64
}

// Relay is a node's gossip relay engine. Like the consensus engines it
// is a pure state machine owned by the node's event loop: Broadcast,
// Receive, Flush, Advance and SetPeers must all be called from that
// loop. Only Stats is safe from other goroutines.
type Relay struct {
	self    gcrypto.Address
	peers   []gcrypto.Address
	fanout  int
	auto    bool // fanout derived from peer count
	maxHops int
	every   Time

	pending []RelayEntry
	scratch []gcrypto.Address
	rng     *rand.Rand
	dupe    *DupeMap

	forwardedFrames  atomic.Uint64
	forwardedEntries atomic.Uint64
	suppressed       atomic.Uint64
	dropped          atomic.Uint64
	delivered        atomic.Uint64
	dupeEntries      atomic.Uint64
	dupeGens         atomic.Uint64
}

// autoFanout is ceil(log₂(n+1))+1, floored at the default: log-degree
// random graphs are connected with high probability, and the +1 absorbs
// faulty peers.
func autoFanout(n int) int {
	f := 1
	for p := 1; p < n+1; p *= 2 {
		f++
	}
	if f < DefaultRelayFanout {
		f = DefaultRelayFanout
	}
	return f
}

// NewRelay builds a relay for one node.
func NewRelay(cfg RelayConfig) *Relay {
	r := &Relay{
		self:    cfg.Self,
		fanout:  cfg.Fanout,
		auto:    cfg.Fanout <= 0,
		maxHops: cfg.MaxHops,
		every:   cfg.FlushEvery,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		dupe:    NewDupeMap(cfg.DupeTTL, cfg.DupeRounds, cfg.DupeCap),
	}
	if r.maxHops <= 0 {
		r.maxHops = DefaultMaxRelayHops
	}
	if r.every <= 0 {
		r.every = DefaultRelayFlush
	}
	r.SetPeers(cfg.Peers)
	return r
}

// SetPeers replaces the relay's peer set (self is filtered out); the
// runtime calls it at construction and on every era switch so the
// epidemic always spans the current committee.
func (r *Relay) SetPeers(peers []gcrypto.Address) {
	r.peers = r.peers[:0]
	for _, p := range peers {
		if p != r.self {
			r.peers = append(r.peers, p)
		}
	}
	if r.auto {
		r.fanout = autoFanout(len(r.peers))
	}
}

// Fanout returns the current flush fanout.
func (r *Relay) Fanout() int { return r.fanout }

// PeerCount returns the current peer-set size (self excluded).
func (r *Relay) PeerCount() int { return len(r.peers) }

// FlushEvery returns the batching interval for timer arming.
func (r *Relay) FlushEvery() Time { return r.every }

// HasPending reports whether a flush timer needs to be armed.
func (r *Relay) HasPending() bool { return len(r.pending) > 0 }

// Broadcast queues an envelope this node originated. Its digest is
// marked seen so an echo arriving back over the epidemic is suppressed
// rather than re-queued.
func (r *Relay) Broadcast(now Time, env *Envelope) {
	wire := EncodeEnvelope(env)
	r.dupe.Seen(now, gcrypto.HashBytes(wire))
	r.pending = append(r.pending, RelayEntry{Hop: 1, Wire: wire, Env: env})
	r.gauges()
}

// Receive unwraps an incoming relay frame and returns the novel inner
// envelopes, in frame order, for engine delivery. Novel entries under
// the hop bound are queued for re-forwarding at hop+1.
func (r *Relay) Receive(now Time, frame *Envelope) ([]*Envelope, error) {
	entries, err := frame.RelayEntries()
	if err != nil {
		return nil, err
	}
	var novel []*Envelope
	for i := range entries {
		ent := entries[i]
		if r.dupe.Seen(now, gcrypto.HashBytes(ent.Wire)) {
			r.suppressed.Add(1)
			continue
		}
		novel = append(novel, ent.Env)
		r.delivered.Add(1)
		if int(ent.Hop) >= r.maxHops {
			r.dropped.Add(1)
			continue
		}
		r.pending = append(r.pending, RelayEntry{Hop: ent.Hop + 1, Wire: ent.Wire, Env: ent.Env})
	}
	r.gauges()
	return novel, nil
}

// Flush drains the pending queue into batched relay frames and sends
// each frame to a fresh fanout-sized random peer subset via send.
func (r *Relay) Flush(now Time, send func(to gcrypto.Address, env *Envelope)) {
	if len(r.pending) == 0 || len(r.peers) == 0 || r.fanout == 0 {
		r.pending = r.pending[:0]
		return
	}
	for off := 0; off < len(r.pending); off += MaxRelayEntries {
		end := off + MaxRelayEntries
		if end > len(r.pending) {
			end = len(r.pending)
		}
		// Copy, don't alias: the frame (and its memoized entry slice)
		// stays referenced while in flight, but r.pending's backing array
		// is reused for the next batch the moment this loop returns.
		batch := append([]RelayEntry(nil), r.pending[off:end]...)
		frame := NewRelayEnvelope(r.self, batch)
		targets := r.pickTargets()
		for _, to := range targets {
			send(to, frame)
		}
		r.forwardedFrames.Add(uint64(len(targets)))
		r.forwardedEntries.Add(uint64(len(batch) * len(targets)))
	}
	r.pending = r.pending[:0]
	r.gauges()
}

// pickTargets draws a fanout-sized random peer subset by partial
// Fisher–Yates over a scratch copy; deterministic under the seeded rng.
func (r *Relay) pickTargets() []gcrypto.Address {
	k := r.fanout
	if k > len(r.peers) {
		k = len(r.peers)
	}
	r.scratch = append(r.scratch[:0], r.peers...)
	for i := 0; i < k; i++ {
		j := i + r.rng.Intn(len(r.scratch)-i)
		r.scratch[i], r.scratch[j] = r.scratch[j], r.scratch[i]
	}
	return r.scratch[:k]
}

// Advance forwards commit progress to the dupemap watermark.
func (r *Relay) Advance(now Time, era, seq uint64) {
	r.dupe.Advance(now, era, seq)
	r.gauges()
}

func (r *Relay) gauges() {
	r.dupeEntries.Store(uint64(r.dupe.Len()))
	r.dupeGens.Store(uint64(len(r.dupe.gens)))
}

// Stats snapshots the relay counters; safe from any goroutine.
func (r *Relay) Stats() RelayStats {
	return RelayStats{
		ForwardedFrames:    r.forwardedFrames.Load(),
		ForwardedEntries:   r.forwardedEntries.Load(),
		Suppressed:         r.suppressed.Load(),
		Dropped:            r.dropped.Load(),
		Delivered:          r.delivered.Load(),
		DupemapEntries:     r.dupeEntries.Load(),
		DupemapGenerations: r.dupeGens.Load(),
	}
}

// DupeStats exposes the dupemap counters; event-loop only.
func (r *Relay) DupeStats() DupeStats { return r.dupe.Stats() }
