package consensus

import (
	"time"

	"gpbft/internal/gcrypto"
)

// Dupemap defaults. The TTL is deliberately generous: suppressing a
// re-broadcast for too long only delays liveness mechanisms that
// retransmit byte-identical envelopes (ed25519 is deterministic, so a
// re-sealed identical payload hashes the same), while expiring too
// early merely lets a benign duplicate through to an engine that
// tolerates duplicates anyway.
const (
	// DefaultDupemapTTL is how long a digest stays suppressive when the
	// commit watermark is NOT advancing (a stalled chain must not
	// suppress retransmitted view-change traffic forever).
	DefaultDupemapTTL = Time(10 * time.Second)
	// DefaultDupemapRounds is how many watermark advancements an entry
	// survives once the chain IS making progress.
	DefaultDupemapRounds = 4
	// DefaultDupemapCap bounds total retained digests per node.
	DefaultDupemapCap = 1 << 16
)

// Watermark is local chain progress: the (era, seq) most recently
// committed. Ordering is lexicographic — eras reset sequence spaces.
type Watermark struct {
	Era uint64
	Seq uint64
}

func (w Watermark) less(o Watermark) bool {
	if w.Era != o.Era {
		return w.Era < o.Era
	}
	return w.Seq < o.Seq
}

// dupeGen is one round-scoped generation of digests: the entries
// recorded between two watermark advancements. Expiry is wholesale —
// a generation is dropped as a unit, never entry by entry.
type dupeGen struct {
	mark Watermark
	born Time
	set  map[gcrypto.Hash]struct{}
}

// DupeMap is the relay's round-scoped duplicate-suppression map:
// digests of envelopes already delivered (or originated), bucketed by
// commit-watermark generation. Advancing the (era, seq) watermark
// retires old generations, so occupancy tracks the consensus window
// rather than total traffic; a hard cap sheds the oldest generation
// wholesale under synthetic floods. Not concurrency-safe: it is owned
// by the node's single event loop, like the engines.
type DupeMap struct {
	ttl    Time
	rounds int
	cap    int

	gens  []*dupeGen // oldest → newest; the last is the insert target
	total int
	stats DupeStats
}

// DupeStats are the map's lifetime counters plus current occupancy.
type DupeStats struct {
	// Entries and Generations are current occupancy.
	Entries     int
	Generations int
	// Hits counts Seen calls that found the digest already present
	// (each hit is one suppressed duplicate).
	Hits uint64
	// Inserts counts first-seen digests recorded.
	Inserts uint64
	// Evicted counts entries shed by cap pressure; Expired counts
	// entries retired by watermark advancement or the time TTL.
	Evicted uint64
	Expired uint64
}

// NewDupeMap builds a map; zero arguments select the defaults.
func NewDupeMap(ttl Time, rounds, capEntries int) *DupeMap {
	if ttl <= 0 {
		ttl = DefaultDupemapTTL
	}
	if rounds <= 0 {
		rounds = DefaultDupemapRounds
	}
	if capEntries <= 0 {
		capEntries = DefaultDupemapCap
	}
	return &DupeMap{ttl: ttl, rounds: rounds, cap: capEntries}
}

// Len returns the current entry count across all generations.
func (d *DupeMap) Len() int { return d.total }

// Stats returns the counters with occupancy filled in.
func (d *DupeMap) Stats() DupeStats {
	s := d.stats
	s.Entries = d.total
	s.Generations = len(d.gens)
	return s
}

func (d *DupeMap) dropOldest(counter *uint64) {
	g := d.gens[0]
	d.total -= len(g.set)
	*counter += uint64(len(g.set))
	d.gens = d.gens[1:]
}

// expireTime retires generations older than the TTL. Watermark-driven
// expiry (Advance) is the primary mechanism; the clock backstop exists
// for a stalled chain, where no commits means no watermark movement
// and liveness depends on retransmitted byte-identical envelopes
// eventually passing through again.
func (d *DupeMap) expireTime(now Time) {
	for len(d.gens) > 0 && now-d.gens[0].born >= d.ttl {
		d.dropOldest(&d.stats.Expired)
	}
}

// Seen records the digest at the current generation and reports
// whether it was already present anywhere in the retained window.
func (d *DupeMap) Seen(now Time, h gcrypto.Hash) bool {
	d.expireTime(now)
	for _, g := range d.gens {
		if _, ok := g.set[h]; ok {
			d.stats.Hits++
			return true
		}
	}
	if d.total >= d.cap && len(d.gens) > 0 {
		// Cap pressure: shed the oldest round wholesale. When a single
		// flooded round IS the whole map, reset it — bounded memory beats
		// perfect suppression (engines tolerate duplicates regardless).
		if len(d.gens) == 1 {
			g := d.gens[0]
			d.total -= len(g.set)
			d.stats.Evicted += uint64(len(g.set))
			g.set = make(map[gcrypto.Hash]struct{})
			g.born = now
		} else {
			d.dropOldest(&d.stats.Evicted)
		}
	}
	if len(d.gens) == 0 {
		d.gens = append(d.gens, &dupeGen{born: now, set: make(map[gcrypto.Hash]struct{})})
	}
	cur := d.gens[len(d.gens)-1]
	cur.set[h] = struct{}{}
	d.total++
	d.stats.Inserts++
	return false
}

// Advance moves the commit watermark. A strictly larger (era, seq)
// opens a fresh generation and retires every generation more than
// `rounds` advancements old; stale or repeated watermarks are ignored
// (commits can be observed out of order through the sync path).
func (d *DupeMap) Advance(now Time, era, seq uint64) {
	w := Watermark{Era: era, Seq: seq}
	if len(d.gens) > 0 && !d.gens[len(d.gens)-1].mark.less(w) {
		return
	}
	d.gens = append(d.gens, &dupeGen{mark: w, born: now, set: make(map[gcrypto.Hash]struct{})})
	for len(d.gens) > d.rounds+1 {
		d.dropOldest(&d.stats.Expired)
	}
}
