package consensus

import "sync/atomic"

// TimerAllocator hands out process-unique timer IDs. The G-PBFT era
// layer and its inner per-era PBFT engines share one allocator so that
// timer IDs never collide across engine generations.
type TimerAllocator struct {
	next atomic.Uint64
}

// NewTimerAllocator returns an allocator starting at 1 (0 is reserved
// as "no timer").
func NewTimerAllocator() *TimerAllocator {
	return &TimerAllocator{}
}

// Next returns a fresh TimerID.
func (a *TimerAllocator) Next() TimerID {
	return TimerID(a.next.Add(1))
}
