package consensus

import (
	"bytes"
	"testing"

	"gpbft/internal/gcrypto"
)

// FuzzDecodeRelayFrame hammers the relay-frame decoder with mutated
// wire bytes. Anything it accepts must satisfy every structural bound
// (entry count, hop range, decodable non-relay inner envelopes) and —
// like FuzzDecodeEvidence — must re-encode to the exact input bytes:
// the codec rejects non-minimal varints and trailing garbage, so a
// valid frame has one and only one wire form, which is what makes the
// dupemap digest key unambiguous across hops.
func FuzzDecodeRelayFrame(f *testing.F) {
	kp := gcrypto.DeterministicKeyPair(1)
	mk := func(k MsgKind, data string, hop uint8) RelayEntry {
		env := Seal(kp, &kindPayload{K: k, Data: []byte(data)})
		return RelayEntry{Hop: hop, Wire: EncodeEnvelope(env)}
	}
	f.Add(EncodeRelayBody([]RelayEntry{mk(KindPrepare, "a", 1)}))
	f.Add(EncodeRelayBody([]RelayEntry{
		mk(KindCommit, "b", 2),
		mk(KindViewChange, "c", DefaultMaxRelayHops),
	}))
	f.Add(EncodeRelayBody([]RelayEntry{mk(KindPrePrepare, "d", maxRelayHopBound)}))
	f.Add([]byte("gpbft/relay/v1"))
	f.Add([]byte{0x0e, 'g', 'p', 'b', 'f', 't', '/', 'r', 'e', 'l', 'a', 'y', '/', 'v', '1', 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeRelayBody(data)
		if err != nil {
			return
		}
		if len(entries) == 0 || len(entries) > MaxRelayEntries {
			t.Fatalf("accepted frame with %d entries", len(entries))
		}
		for i, e := range entries {
			if e.Hop == 0 || e.Hop > maxRelayHopBound {
				t.Fatalf("entry %d: accepted hop %d", i, e.Hop)
			}
			if e.Env == nil {
				t.Fatalf("entry %d: accepted without decoded inner envelope", i)
			}
			if e.Env.MsgKind == KindRelay {
				t.Fatalf("entry %d: accepted nested relay frame", i)
			}
			if reWire := EncodeEnvelope(e.Env); !bytes.Equal(reWire, e.Wire) {
				t.Fatalf("entry %d: inner envelope not in canonical form", i)
			}
		}
		if re := EncodeRelayBody(entries); !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical encoding:\n in: %x\nout: %x", data, re)
		}
	})
}
