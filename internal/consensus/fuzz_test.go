package consensus

import (
	"bytes"
	"testing"

	"gpbft/internal/gcrypto"
)

// FuzzDecodeEnvelope: the wire decoder must be total and canonical.
func FuzzDecodeEnvelope(f *testing.F) {
	kp := gcrypto.DeterministicKeyPair(1)
	f.Add(EncodeEnvelope(Seal(kp, &fakePayload{N: 1, S: "seed"})))
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeEnvelope(env), data) {
			t.Fatal("envelope does not re-encode canonically")
		}
		// Verify must be total too (almost always failing, never panicking).
		_ = env.Verify()
	})
}
