package consensus

import (
	"errors"
	"fmt"
	"sort"

	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// Committee is the fixed membership of one PBFT instance (one G-PBFT
// era). Members are sorted by address so every honest node derives the
// same primary rotation.
type Committee struct {
	members []types.EndorserInfo
	index   map[gcrypto.Address]int
}

// ErrEmptyCommittee is returned when constructing a committee with no
// members.
var ErrEmptyCommittee = errors.New("consensus: empty committee")

// NewCommittee builds a committee from endorser infos; order-insensitive
// (members are canonically sorted by address).
func NewCommittee(members []types.EndorserInfo) (*Committee, error) {
	ms := make([]types.EndorserInfo, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Address.Less(ms[j].Address) })
	return NewOrderedCommittee(ms)
}

// NewOrderedCommittee builds a committee preserving the given member
// order for primary rotation. G-PBFT uses it to bias block production
// toward endorsers with longer geographic timers ("A longer time in
// the geographic timer will have a higher chance of generating a new
// block", Section III-B5): the caller orders members by timer and the
// rotation follows.
func NewOrderedCommittee(members []types.EndorserInfo) (*Committee, error) {
	if len(members) == 0 {
		return nil, ErrEmptyCommittee
	}
	ms := make([]types.EndorserInfo, len(members))
	copy(ms, members)
	c := &Committee{members: ms, index: make(map[gcrypto.Address]int, len(ms))}
	for i, m := range ms {
		if _, dup := c.index[m.Address]; dup {
			return nil, fmt.Errorf("consensus: duplicate member %s", m.Address.Short())
		}
		c.index[m.Address] = i
	}
	return c, nil
}

// Size returns the number of members (the paper's n, within an era).
func (c *Committee) Size() int { return len(c.members) }

// F returns the maximum tolerated faults: floor((n-1)/3).
func (c *Committee) F() int { return (len(c.members) - 1) / 3 }

// Quorum returns the certificate size for prepares and commits:
// ⌈(n+f+1)/2⌉, which equals 2f+1 when n = 3f+1 and grows with the
// extra members otherwise. This is the smallest size for which any two
// quorums intersect in at least f+1 members (so at least one honest
// member), the intersection property PBFT safety rests on — plain
// 2f+1 is NOT safe for n ≠ 3f+1 (e.g. n = 5, f = 1: two 3-quorums can
// share just one, possibly Byzantine, member).
func (c *Committee) Quorum() int {
	n := len(c.members)
	return (n+c.F())/2 + 1
}

// QuorumFor computes the same quorum rule for an arbitrary committee
// size (used by certificate verification outside a Committee value).
func QuorumFor(n int) int {
	f := (n - 1) / 3
	return (n+f)/2 + 1
}

// WeakQuorum returns f+1, enough to contain one honest node.
func (c *Committee) WeakQuorum() int { return c.F() + 1 }

// Primary returns the primary's address for a view: round-robin over
// the sorted membership, exactly one primary per view (Section III-B4).
func (c *Committee) Primary(view uint64) gcrypto.Address {
	return c.members[int(view%uint64(len(c.members)))].Address
}

// IsMember reports whether addr belongs to the committee.
func (c *Committee) IsMember(addr gcrypto.Address) bool {
	_, ok := c.index[addr]
	return ok
}

// IndexOf returns the member's position in the sorted order, or -1.
func (c *Committee) IndexOf(addr gcrypto.Address) int {
	i, ok := c.index[addr]
	if !ok {
		return -1
	}
	return i
}

// Member returns the info at position i.
func (c *Committee) Member(i int) types.EndorserInfo { return c.members[i] }

// Members returns the sorted membership.
func (c *Committee) Members() []types.EndorserInfo {
	out := make([]types.EndorserInfo, len(c.members))
	copy(out, c.members)
	return out
}

// Addresses returns the sorted member addresses.
func (c *Committee) Addresses() []gcrypto.Address {
	out := make([]gcrypto.Address, len(c.members))
	for i, m := range c.members {
		out[i] = m.Address
	}
	return out
}

// Others returns all member addresses except self; the broadcast
// audience for a member.
func (c *Committee) Others(self gcrypto.Address) []gcrypto.Address {
	out := make([]gcrypto.Address, 0, len(c.members)-1)
	for _, m := range c.members {
		if m.Address != self {
			out = append(out, m.Address)
		}
	}
	return out
}

// PubKey returns the public key of a member, or nil for non-members.
func (c *Committee) PubKey(addr gcrypto.Address) gcrypto.PublicKey {
	i, ok := c.index[addr]
	if !ok {
		return nil
	}
	return c.members[i].PubKey
}

// Keys returns the address → public key map (for certificate checks).
func (c *Committee) Keys() map[gcrypto.Address]gcrypto.PublicKey {
	out := make(map[gcrypto.Address]gcrypto.PublicKey, len(c.members))
	for _, m := range c.members {
		out[m.Address] = m.PubKey
	}
	return out
}
