package consensus

import (
	"encoding/binary"
	"testing"
	"time"

	"gpbft/internal/gcrypto"
)

func hashN(n uint64) gcrypto.Hash {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], n)
	return gcrypto.HashBytes(b[:])
}

// TestDupeMapCollision: the map keys on the digest, so byte-identical
// envelopes collide deliberately (that IS suppression), including the
// deterministic-ed25519 case where re-sealing the same payload yields
// the same bytes — while distinct payloads never interfere.
func TestDupeMapCollision(t *testing.T) {
	d := NewDupeMap(0, 0, 0)
	kp := gcrypto.DeterministicKeyPair(1)
	a1 := EncodeEnvelope(Seal(kp, &kindPayload{K: KindPrepare, Data: []byte("vote-a")}))
	a2 := EncodeEnvelope(Seal(kp, &kindPayload{K: KindPrepare, Data: []byte("vote-a")}))
	b := EncodeEnvelope(Seal(kp, &kindPayload{K: KindPrepare, Data: []byte("vote-b")}))

	if string(a1) != string(a2) {
		t.Fatal("re-sealing an identical payload should reproduce identical bytes (deterministic ed25519)")
	}
	if d.Seen(0, gcrypto.HashBytes(a1)) {
		t.Fatal("first sighting reported as duplicate")
	}
	if !d.Seen(0, gcrypto.HashBytes(a2)) {
		t.Fatal("identical re-seal not suppressed")
	}
	if d.Seen(0, gcrypto.HashBytes(b)) {
		t.Fatal("distinct payload suppressed")
	}
	if st := d.Stats(); st.Hits != 1 || st.Inserts != 2 {
		t.Fatalf("stats %+v, want 1 hit / 2 inserts", st)
	}
}

// TestDupeMapWatermarkExpiry: entries survive exactly `rounds`
// watermark advancements, then a re-sighting registers as novel again.
func TestDupeMapWatermarkExpiry(t *testing.T) {
	const rounds = 3
	d := NewDupeMap(0, rounds, 0)
	h := hashN(42)
	d.Seen(0, h)
	for i := 1; i <= rounds; i++ {
		d.Advance(Time(i), 0, uint64(i))
		if !d.Seen(Time(i), h) {
			t.Fatalf("entry expired after %d advancements, want %d retained", i, rounds)
		}
	}
	// The retention loop reinserts h into the newest generation each
	// time, so push watermarks until every generation that could hold it
	// has rotated out without touching h in between.
	for i := rounds + 1; i <= 3*rounds+2; i++ {
		d.Advance(Time(i), 0, uint64(i))
	}
	if d.Seen(100, h) {
		t.Fatal("entry survived full watermark rotation")
	}
}

// TestDupeMapStaleWatermarkIgnored: commits observed out of order (the
// sync path) must not reopen or reorder generations.
func TestDupeMapStaleWatermarkIgnored(t *testing.T) {
	d := NewDupeMap(0, 0, 0)
	d.Seen(0, hashN(1))
	d.Advance(0, 2, 10)
	gens := len(d.gens)
	d.Advance(0, 2, 10) // repeat
	d.Advance(0, 2, 9)  // stale seq
	d.Advance(0, 1, 99) // stale era (lexicographic: era dominates)
	if len(d.gens) != gens {
		t.Fatalf("stale watermarks changed generations: %d -> %d", gens, len(d.gens))
	}
	d.Advance(0, 3, 0) // new era, seq reset — still strictly larger
	if len(d.gens) != gens+1 {
		t.Fatal("era bump with seq reset not accepted as progress")
	}
}

// TestDupeMapTimeTTL: with no commits at all (stalled chain), the clock
// backstop must eventually forget digests, or liveness-critical
// retransmissions (byte-identical view-changes) would be suppressed
// forever.
func TestDupeMapTimeTTL(t *testing.T) {
	ttl := Time(5 * time.Second)
	d := NewDupeMap(ttl, 0, 0)
	h := hashN(7)
	d.Seen(0, h)
	if !d.Seen(ttl-1, h) {
		t.Fatal("suppressed window ended early")
	}
	// The hit above did not refresh the generation's birth time; one
	// tick past the TTL the whole generation (re-inserted h included)
	// must be gone... but the re-insert landed in the same generation,
	// so its clock is the generation's. Verify expiry from birth.
	d2 := NewDupeMap(ttl, 0, 0)
	d2.Seen(0, h)
	if d2.Seen(ttl, h) {
		t.Fatal("entry survived past TTL on a stalled chain")
	}
	if st := d2.Stats(); st.Expired != 1 {
		t.Fatalf("expired counter %d, want 1", st.Expired)
	}
}

// TestDupeMapBoundedFlood: a million distinct digests with zero
// watermark progress must never push occupancy past the cap — the
// bounded-memory guarantee under synthetic floods.
func TestDupeMapBoundedFlood(t *testing.T) {
	const cap = 1 << 12
	d := NewDupeMap(0, 0, cap)
	for i := uint64(0); i < 1_000_000; i++ {
		if i%5000 == 0 {
			// Occasional progress: generations rotate under the flood too.
			d.Advance(Time(i), 0, i/5000+1)
		}
		d.Seen(Time(i), hashN(i))
		if d.Len() > cap {
			t.Fatalf("occupancy %d exceeds cap %d at envelope %d", d.Len(), cap, i)
		}
	}
	st := d.Stats()
	if st.Inserts != 1_000_000 {
		t.Fatalf("inserts %d, want 1000000", st.Inserts)
	}
	if st.Evicted+st.Expired < 1_000_000-cap {
		t.Fatalf("evicted %d + expired %d leave more than cap resident", st.Evicted, st.Expired)
	}
	if st.Entries > cap {
		t.Fatalf("final occupancy %d exceeds cap %d", st.Entries, cap)
	}
}

// TestDupeMapSingleGenFloodResets covers the cap-pressure path where
// one flooded round IS the whole map: it must reset wholesale rather
// than grow or thrash.
func TestDupeMapSingleGenFloodResets(t *testing.T) {
	const cap = 64
	d := NewDupeMap(0, 0, cap)
	for i := uint64(0); i < 10*cap; i++ {
		d.Seen(0, hashN(i))
	}
	if d.Len() > cap {
		t.Fatalf("single-generation flood occupancy %d exceeds cap %d", d.Len(), cap)
	}
	if st := d.Stats(); st.Evicted == 0 {
		t.Fatal("cap pressure never evicted")
	}
}

// TestDupeMapSuppressionCounters is the table-driven check that each
// operation sequence lands exactly the expected counter totals.
func TestDupeMapSuppressionCounters(t *testing.T) {
	type op struct {
		advance bool
		era     uint64
		seq     uint64
		hash    uint64
		at      Time
	}
	cases := []struct {
		name             string
		ttl              Time
		rounds           int
		ops              []op
		hits             uint64
		inserts          uint64
		expired          uint64
		finalEntries     int
		finalGenerations int
	}{
		{
			name: "no duplicates",
			ops:  []op{{hash: 1}, {hash: 2}, {hash: 3}},
			hits: 0, inserts: 3, finalEntries: 3, finalGenerations: 1,
		},
		{
			name: "burst of duplicates",
			ops:  []op{{hash: 1}, {hash: 1}, {hash: 1}, {hash: 2}, {hash: 1}},
			hits: 3, inserts: 2, finalEntries: 2, finalGenerations: 1,
		},
		{
			name:   "duplicate across one advancement",
			rounds: 2,
			ops: []op{
				{hash: 1},
				{advance: true, seq: 1},
				{hash: 1}, // still retained one round back
			},
			hits: 1, inserts: 1, finalEntries: 1, finalGenerations: 2,
		},
		{
			name:   "novel again after rotation",
			rounds: 1,
			ops: []op{
				{hash: 1},
				{advance: true, seq: 1},
				{advance: true, seq: 2},
				{hash: 1}, // initial generation rotated out
			},
			hits: 0, inserts: 2, expired: 1, finalEntries: 1, finalGenerations: 2,
		},
		{
			name: "ttl expiry counts expired",
			ttl:  Time(time.Second),
			ops: []op{
				{hash: 1, at: 0},
				{hash: 2, at: Time(time.Second)}, // first generation aged out
				{hash: 1, at: Time(time.Second)},
			},
			hits: 0, inserts: 3, expired: 1, finalEntries: 2, finalGenerations: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDupeMap(tc.ttl, tc.rounds, 0)
			for _, o := range tc.ops {
				if o.advance {
					d.Advance(o.at, o.era, o.seq)
					continue
				}
				d.Seen(o.at, hashN(o.hash))
			}
			st := d.Stats()
			if st.Hits != tc.hits || st.Inserts != tc.inserts || st.Expired != tc.expired {
				t.Fatalf("counters hits=%d inserts=%d expired=%d, want %d/%d/%d",
					st.Hits, st.Inserts, st.Expired, tc.hits, tc.inserts, tc.expired)
			}
			if st.Entries != tc.finalEntries || st.Generations != tc.finalGenerations {
				t.Fatalf("occupancy entries=%d gens=%d, want %d/%d",
					st.Entries, st.Generations, tc.finalEntries, tc.finalGenerations)
			}
		})
	}
}
