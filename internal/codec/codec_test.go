package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestScalarRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.Uint8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.Uint16(0xBEEF)
	w.Uint32(0xDEADBEEF)
	w.Uint64(math.MaxUint64)
	w.Int64(-42)
	w.Float64(114.1795)

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 0xAB {
		t.Errorf("Uint8=%x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools mangled")
	}
	if got := r.Uint16(); got != 0xBEEF {
		t.Errorf("Uint16=%x", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32=%x", got)
	}
	if got := r.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64=%x", got)
	}
	if got := r.Int64(); got != -42 {
		t.Errorf("Int64=%d", got)
	}
	if got := r.Float64(); got != 114.1795 {
		t.Errorf("Float64=%v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestBytesStringRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.WriteBytes([]byte{1, 2, 3})
	w.WriteBytes(nil)
	w.String("era-switch")
	w.String("")

	r := NewReader(w.Bytes())
	if !bytes.Equal(r.ReadBytes(), []byte{1, 2, 3}) {
		t.Error("bytes mangled")
	}
	if len(r.ReadBytes()) != 0 {
		t.Error("nil bytes should decode empty")
	}
	if r.ReadString() != "era-switch" {
		t.Error("string mangled")
	}
	if r.ReadString() != "" {
		t.Error("empty string mangled")
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeRoundTrip(t *testing.T) {
	ts := time.Date(2019, 8, 5, 18, 0, 0, 123, time.UTC)
	w := NewWriter(0)
	w.Time(ts)
	w.Time(time.Time{})
	r := NewReader(w.Bytes())
	if got := r.Time(); !got.Equal(ts) {
		t.Errorf("time %v != %v", got, ts)
	}
	if got := r.Time(); !got.IsZero() {
		t.Errorf("zero time decoded as %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestRawRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.Raw([]byte{9, 8, 7, 6})
	r := NewReader(w.Bytes())
	if !bytes.Equal(r.ReadRaw(4), []byte{9, 8, 7, 6}) {
		t.Error("raw mangled")
	}
	var dst [2]byte
	w2 := NewWriter(0)
	w2.Raw([]byte{5, 4})
	r2 := NewReader(w2.Bytes())
	r2.RawInto(dst[:])
	if dst != [2]byte{5, 4} {
		t.Error("RawInto mangled")
	}
}

func TestShortBuffer(t *testing.T) {
	r := NewReader([]byte{0x01})
	_ = r.Uint64()
	if r.Err() != ErrShortBuffer {
		t.Fatalf("want ErrShortBuffer, got %v", r.Err())
	}
	// Subsequent reads stay failed and return zero values.
	if r.Uint8() != 0 || r.Err() != ErrShortBuffer {
		t.Fatal("reader must stay in error state")
	}
}

func TestOversizePrefixRejected(t *testing.T) {
	w := NewWriter(0)
	w.Count(MaxSliceLen + 1)
	r := NewReader(w.Bytes())
	if r.Count() != 0 || r.Err() != ErrOversize {
		t.Fatalf("want ErrOversize, got %v", r.Err())
	}

	w2 := NewWriter(0)
	w2.buf = appendUvarintForTest(w2.buf, MaxBytesLen+1)
	r2 := NewReader(w2.Bytes())
	if r2.ReadBytes() != nil || r2.Err() != ErrOversize {
		t.Fatalf("want ErrOversize, got %v", r2.Err())
	}
}

func TestTrailingBytes(t *testing.T) {
	w := NewWriter(0)
	w.Uint32(7)
	w.Uint8(1)
	r := NewReader(w.Bytes())
	_ = r.Uint32()
	if err := r.Finish(); err == nil {
		t.Fatal("Finish must fail with trailing bytes")
	}
}

func TestCountRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 300, MaxSliceLen} {
		w := NewWriter(0)
		w.Count(n)
		r := NewReader(w.Bytes())
		if got := r.Count(); got != n {
			t.Errorf("Count(%d) round-tripped to %d", n, got)
		}
	}
}

// Property: arbitrary scalar tuples round-trip exactly.
func TestCodecProperty(t *testing.T) {
	f := func(a uint64, b int64, c float64, s string, raw []byte, ok bool) bool {
		if math.IsNaN(c) {
			c = 0 // NaN != NaN; bit pattern round-trips but comparison fails
		}
		w := NewWriter(0)
		w.Uint64(a)
		w.Int64(b)
		w.Float64(c)
		w.String(s)
		w.WriteBytes(raw)
		w.Bool(ok)

		r := NewReader(w.Bytes())
		if r.Uint64() != a || r.Int64() != b || r.Float64() != c {
			return false
		}
		if r.ReadString() != s {
			return false
		}
		if !bytes.Equal(r.ReadBytes(), raw) {
			return false
		}
		if r.Bool() != ok {
			return false
		}
		return r.Finish() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: encoding the same values twice produces identical bytes.
func TestCodecDeterministic(t *testing.T) {
	enc := func() []byte {
		w := NewWriter(0)
		w.Float64(114.1795)
		w.String("endorser")
		w.Time(time.Unix(1565025600, 0))
		return w.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Uint64(1)
	if w.Len() != 8 {
		t.Fatalf("Len=%d", w.Len())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset must empty the writer")
	}
}

// appendUvarintForTest mirrors binary.AppendUvarint without importing
// encoding/binary in the test.
func appendUvarintForTest(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}
