// Package codec implements the canonical binary encoding used for both
// hashing and the wire format. It must be deterministic: two nodes
// encoding the same block must produce identical bytes, or signature
// and digest checks would diverge. The format is:
//
//   - fixed-width big-endian integers for counts and scalars,
//   - IEEE-754 bits for floats (coordinates),
//   - uvarint-length-prefixed byte strings,
//   - int64 UnixNano for timestamps.
//
// encoding/gob and encoding/json are unsuitable: gob embeds type
// metadata and is not canonical across streams, and JSON float
// formatting is not round-trip stable enough for digests.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Limits protect decoders from hostile length prefixes.
const (
	// MaxBytesLen is the largest length-prefixed byte string accepted.
	MaxBytesLen = 16 << 20 // 16 MiB
	// MaxSliceLen is the largest element count accepted for sequences.
	MaxSliceLen = 1 << 20
)

// Errors returned by the decoder.
var (
	ErrShortBuffer = errors.New("codec: short buffer")
	ErrOversize    = errors.New("codec: length prefix exceeds limit")
	ErrTrailing    = errors.New("codec: trailing bytes after decode")
	ErrNonMinimal  = errors.New("codec: non-minimal varint encoding")
)

// Writer accumulates a canonical encoding. The zero value is ready to
// use. Writer never fails; the buffer grows as needed.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the writer for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uint8 appends a single byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends 0x01 or 0x00.
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Uint16 appends a big-endian uint16.
func (w *Writer) Uint16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// Uint32 appends a big-endian uint32.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a big-endian uint64.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Int64 appends a big-endian two's-complement int64.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Float64 appends the IEEE-754 bit pattern of v.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// Bytes appends a uvarint length prefix followed by b.
func (w *Writer) WriteBytes(b []byte) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends s as a length-prefixed byte string.
func (w *Writer) String(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends b with no length prefix (for fixed-size fields such as
// hashes and addresses).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Time appends t as int64 UnixNano; the zero time encodes as the most
// negative value so it is distinguishable.
func (w *Writer) Time(t time.Time) {
	if t.IsZero() {
		w.Int64(math.MinInt64)
		return
	}
	w.Int64(t.UnixNano())
}

// Count appends a sequence length as uvarint.
func (w *Writer) Count(n int) {
	w.buf = binary.AppendUvarint(w.buf, uint64(n))
}

// Reader decodes a canonical encoding. Methods record the first error
// and subsequently return zero values, so call Err once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish verifies the buffer was fully consumed.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail(ErrShortBuffer)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Uint16 reads a big-endian uint16.
func (r *Reader) Uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads a big-endian int64.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Float64 reads an IEEE-754 float64.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

func (r *Reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrShortBuffer)
		return 0
	}
	// Reject padded encodings (a trailing zero continuation byte): every
	// value must have exactly one accepted byte form, or two replicas
	// could read identical structures from different wire bytes and
	// disagree on digests over re-encodings.
	if n > 1 && r.buf[r.off+n-1] == 0 {
		r.fail(ErrNonMinimal)
		return 0
	}
	r.off += n
	return v
}

// ReadBytes reads a length-prefixed byte string, returning a copy.
func (r *Reader) ReadBytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxBytesLen {
		r.fail(ErrOversize)
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// ReadString reads a length-prefixed string.
func (r *Reader) ReadString() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > MaxBytesLen {
		r.fail(ErrOversize)
		return ""
	}
	b := r.take(int(n))
	return string(b)
}

// Raw reads exactly n bytes without a length prefix.
func (r *Reader) ReadRaw(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// RawInto fills dst from the stream (for fixed-size arrays).
func (r *Reader) RawInto(dst []byte) {
	b := r.take(len(dst))
	if b != nil {
		copy(dst, b)
	}
}

// Time reads a timestamp written by Writer.Time.
func (r *Reader) Time() time.Time {
	v := r.Int64()
	if r.err != nil || v == math.MinInt64 {
		return time.Time{}
	}
	return time.Unix(0, v).UTC()
}

// Count reads a sequence length, bounded by MaxSliceLen.
func (r *Reader) Count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > MaxSliceLen {
		r.fail(ErrOversize)
		return 0
	}
	return int(n)
}

// Marshaler is implemented by types with a canonical encoding.
type Marshaler interface {
	MarshalCanonical(w *Writer)
}

// Encode returns the canonical encoding of m.
func Encode(m Marshaler) []byte {
	w := NewWriter(128)
	m.MarshalCanonical(w)
	return w.Bytes()
}
