package chaos

import "testing"

// TestShardScheduleExactlyOnce drives the geo-shard hierarchy through
// a region partition plus an anchor-delegate crash with cross-region
// transfers in flight, and asserts end-to-end exactly-once delivery
// and the fork/height invariants at both layers.
func TestShardScheduleExactlyOnce(t *testing.T) {
	rep, err := RunShardSchedule(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transfers != 8 || rep.Applied != 8 {
		t.Fatalf("transfers %d applied %d, want 8/8", rep.Transfers, rep.Applied)
	}
	t.Logf("shard schedule: %d transfers applied, %d benign dupes, anchor height %d, min region height %d",
		rep.Applied, rep.Dupes, rep.AnchorHeight, rep.MinRegionHeight)
}

// TestShardScheduleSeeds replays the schedule across seeds — fault
// timing interleaves differently with consensus rounds on each.
func TestShardScheduleSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed shard schedule in -short mode")
	}
	for seed := int64(2); seed <= 4; seed++ {
		if _, err := RunShardSchedule(seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
