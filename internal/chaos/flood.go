package chaos

import (
	"fmt"
	"sort"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
	"gpbft/internal/workload"
)

// FloodReport summarises an attack-traffic schedule: honest service
// quality before and during the flood, what the attackers offered and
// landed, and how much traffic the armor turned away.
type FloodReport struct {
	// BaselineP50 is the honest commit-latency median (virtual time)
	// with no attackers; FloodP50 is the same measurement while the
	// attackers flood. The core claim under test: FloodP50 stays within
	// a small multiple of BaselineP50.
	BaselineP50 time.Duration
	FloodP50    time.Duration

	HonestSubmitted   int
	HonestCommitted   int
	HonestRejected    int
	// HonestRetried counts client-side resubmissions through another
	// endorser ("a client will send the transaction to multiple
	// endorsers") for honest txs that had not committed within the
	// retry timeout — e.g. because the entry node was mid view-change
	// when it should have relayed the request.
	HonestRetried     int
	AttackerOffered   int
	AttackerCommitted int

	// Summed over nodes: token-bucket rejections, shed-controller
	// rejections, and QoS evictions of the heaviest identity.
	RejectedRate uint64
	Shed         uint64
	Evicted      uint64
	// MaxShedLevel is the highest degradation level any node reached
	// during the flood phase.
	MaxShedLevel int
}

// RunFloodSchedule drives the overload-armor property: `steps` of
// honest-only traffic establish a latency baseline, then the same
// honest load continues while `attackers` spammer devices (external
// identities, honest about location) each offer spamFactor× the honest
// per-identity rate through the committee. Invariants are checked
// every step; the caller asserts the report's latency and shedding
// properties. Requires Options.RateLimit > 0.
func (c *Cluster) RunFloodSchedule(attackers, spamFactor, steps int) (*FloodReport, error) {
	if c.opts.RateLimit <= 0 {
		return nil, fmt.Errorf("chaos: flood schedule needs RateLimit > 0")
	}
	if attackers < 1 || spamFactor < 1 || steps < 1 {
		return nil, fmt.Errorf("chaos: flood schedule needs attackers, spamFactor, steps >= 1")
	}
	rep := &FloodReport{}

	// Attackers are spammer devices from the workload model: dedicated
	// external identities (seeds far above committee and population
	// ranges) sitting at committee positions so their traffic is
	// geographically plausible — they attack with volume, not lies.
	devs := make([]*workload.Device, attackers)
	attackerIDs := make(map[gcrypto.Address]bool, attackers)
	for k := range devs {
		d := workload.NewDevice(fmt.Sprintf("flood-%d", k), workload.Spammer,
			30000+k, c.positions[k%len(c.positions)], c.rng)
		d.SpamFactor = spamFactor
		devs[k] = d
		attackerIDs[d.Address()] = true
	}

	// Node 0 observes commit latency: the flood schedule never crashes
	// nodes, so its OnCommit wrapper survives the whole run. Honest
	// latency is measured per transaction in virtual time from first
	// submit to the observer's commit — the client-perceived latency.
	type inflightTx struct {
		tx    *types.Transaction
		first consensus.Time // first submit (latency anchor)
		last  consensus.Time // most recent (re)submit
		entry int            // entry node of the last submit
	}
	pending := make(map[gcrypto.Hash]*inflightTx)
	var order []gcrypto.Hash // deterministic retry iteration order
	var honestLat []time.Duration
	obs := c.nodes[0]
	prevCommit := obs.OnCommit
	obs.OnCommit = func(now consensus.Time, b *types.Block) {
		prevCommit(now, b)
		for i := range b.Txs {
			tx := &b.Txs[i]
			if attackerIDs[tx.Sender] {
				rep.AttackerCommitted++
				continue
			}
			if p, ok := pending[tx.ID()]; ok {
				honestLat = append(honestLat, time.Duration(now-p.first))
				delete(pending, tx.ID())
				rep.HonestCommitted++
			}
		}
	}
	defer func() { obs.OnCommit = prevCommit }()

	// One honest data transaction per committee node per step — the
	// per-identity honest rate the attackers are measured against.
	honestTx := func(i, step int) {
		c.nonces[i]++
		tx := &types.Transaction{
			Type:    types.TxNormal,
			Nonce:   c.nonces[i],
			Payload: []byte(fmt.Sprintf("honest-%d-%d", i, step)),
			Fee:     1,
			Geo: types.GeoInfo{
				Location:  c.positions[i],
				Timestamp: c.epoch.Add(c.net.Now()),
			},
		}
		tx.Sign(c.keys[i])
		rep.HonestSubmitted++
		if err := c.nodes[i].Submit(c.net.Now(), tx); err != nil {
			rep.HonestRejected++
			return
		}
		id := tx.ID()
		pending[id] = &inflightTx{tx: tx, first: c.net.Now(), last: c.net.Now(), entry: i}
		order = append(order, id)
	}

	// retryStuck models honest client behavior: a transaction that has
	// not committed within the retry timeout is resent through the NEXT
	// endorser. A request can silently die at its entry node — the
	// relay is skipped while that node is mid view-change or era
	// switch, and there is no pool re-gossip — so without this a
	// perfectly honest transaction can wait forever.
	const retryTimeout = time.Second
	retryStuck := func() {
		now := c.net.Now()
		for _, id := range order {
			p, ok := pending[id]
			if !ok || now-p.last < retryTimeout {
				continue
			}
			p.entry = (p.entry + 1) % len(c.nodes)
			p.last = now
			rep.HonestRetried++
			if err := c.nodes[p.entry].Submit(now, p.tx); err != nil {
				rep.HonestRejected++
			}
		}
	}

	// drain lets in-flight work finish: keep retrying stuck honest txs
	// until the pipeline empties or the retry budget runs out.
	drain := func() {
		for r := 0; r < 10 && len(pending) > 0; r++ {
			retryStuck()
			c.RunFor(500 * time.Millisecond)
		}
		c.RunUntilIdleFor(10 * time.Second)
	}

	// Phase 1: unloaded baseline.
	for s := 0; s < steps; s++ {
		for i := range c.nodes {
			honestTx(i, s)
		}
		c.RunFor(c.opts.StepInterval)
		retryStuck()
		if err := c.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("baseline step %d: %w", s, err)
		}
	}
	drain()
	if err := c.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("baseline drain: %w", err)
	}
	rep.BaselineP50 = quantile(honestLat, 0.5)
	baselineSamples := len(honestLat)
	if baselineSamples == 0 {
		return nil, fmt.Errorf("chaos: baseline phase committed no honest transactions")
	}
	honestLat = honestLat[:0]

	// Phase 2: same honest load, attackers on. Each attacker keeps one
	// entry node for its whole flood (a device holds one connection),
	// so that node's per-identity bucket sees the full offered rate.
	for s := 0; s < steps; s++ {
		for i := range c.nodes {
			honestTx(i, steps+s)
		}
		for k, d := range devs {
			for t := d.TxPerStep(); t > 0; t-- {
				tx := d.DataTx(c.epoch.Add(c.net.Now()), []byte("flood"), 1)
				rep.AttackerOffered++
				c.SubmitRawTx(k%len(c.nodes), tx)
			}
		}
		c.RunFor(c.opts.StepInterval)
		retryStuck()
		for i := range c.nodes {
			if lvl := c.nodes[i].Admission.Level(); lvl > rep.MaxShedLevel {
				rep.MaxShedLevel = lvl
			}
		}
		if err := c.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("flood step %d: %w", s, err)
		}
	}
	drain()
	if err := c.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("flood drain: %w", err)
	}
	rep.FloodP50 = quantile(honestLat, 0.5)
	if len(honestLat) == 0 {
		return nil, fmt.Errorf("chaos: flood phase committed no honest transactions")
	}

	for i := range c.nodes {
		as := c.nodes[i].Admission.Stats()
		rep.RejectedRate += as.RejectedRate
		rep.Shed += as.Shed
		rep.Evicted += c.nodes[i].App.Pool().Stats().EvictedShed
	}
	return rep, nil
}

// quantile returns the q-quantile of the samples (0 for none).
func quantile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}
