// Package chaos is a deterministic fault-injection harness for the
// G-PBFT stack. It drives seeded random schedules of crash, restart,
// partition, heal and message-drop faults against simulated clusters
// and checks the crash-recovery safety invariants after every step:
// no fork, no committed-height regression, no double-signed
// conflicting votes anywhere in the message trace, and liveness once
// the faults are healed.
//
// Every run is reproducible from its seed: a failing schedule can be
// replayed exactly by constructing a Cluster with the same Options.
package chaos

import (
	"fmt"

	"gpbft/internal/codec"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/pbft"
	"gpbft/internal/simnet"
)

// VoteID identifies one slot a replica may vote in. A correct replica
// signs at most one digest per VoteID in its lifetime — across crashes
// and restarts. Two different digests under the same VoteID are a
// double-sign, the safety violation the consensus WAL exists to
// prevent.
type VoteID struct {
	Sender gcrypto.Address
	Kind   consensus.MsgKind
	Era    uint64
	View   uint64
	Seq    uint64
}

// Checker watches every envelope a live sender emits (via the
// simulator's Tap) and records conflicting votes. It sees messages
// that are later dropped or partitioned away too: once signed and
// sent, a vote is out in the world regardless of delivery.
type Checker struct {
	seen       map[VoteID]gcrypto.Hash
	allowed    map[gcrypto.Address]bool
	violations []string
}

// NewChecker creates an empty checker.
func NewChecker() *Checker {
	return &Checker{
		seen:    make(map[VoteID]gcrypto.Hash),
		allowed: make(map[gcrypto.Address]bool),
	}
}

// Allow exempts an address from the double-sign invariant: a declared
// adversary (byzantine.DoubleVoter) equivocates on purpose, and the
// property under test shifts from "nobody equivocates" to "the honest
// majority stays safe and convicts the equivocator".
func (ck *Checker) Allow(addr gcrypto.Address) {
	ck.allowed[addr] = true
}

// Observe is the simnet Tap callback.
func (ck *Checker) Observe(_ consensus.Time, _, _ simnet.NodeID, env *consensus.Envelope) {
	ck.observeEnvelope(env)
}

func (ck *Checker) observeEnvelope(env *consensus.Envelope) {
	switch env.MsgKind {
	case consensus.KindPrePrepare:
		var m pbft.PrePrepare
		if !decodeBody(env, &m) {
			ck.violations = append(ck.violations, fmt.Sprintf("%s from %s: undecodable body", env.MsgKind, env.From.Short()))
			return
		}
		ck.note(env.From, env.MsgKind, m.Era, m.View, m.Seq, m.Digest)
	case consensus.KindPrepare:
		var m pbft.Prepare
		if !decodeBody(env, &m) {
			ck.violations = append(ck.violations, fmt.Sprintf("%s from %s: undecodable body", env.MsgKind, env.From.Short()))
			return
		}
		ck.note(env.From, env.MsgKind, m.Era, m.View, m.Seq, m.Digest)
	case consensus.KindCommit:
		var m pbft.Commit
		if !decodeBody(env, &m) {
			ck.violations = append(ck.violations, fmt.Sprintf("%s from %s: undecodable body", env.MsgKind, env.From.Short()))
			return
		}
		ck.note(env.From, env.MsgKind, m.Era, m.View, m.Seq, m.Digest)
	case consensus.KindRelay:
		// Gossip wraps the originator's sealed votes inside unsealed
		// relay frames: unwrap every inner envelope so an equivocation
		// is caught no matter how many hops carried it. The decoder
		// rejects nested relay frames, so the recursion terminates.
		entries, err := env.RelayEntries()
		if err != nil {
			ck.violations = append(ck.violations, fmt.Sprintf("%s from %s: undecodable relay frame", env.MsgKind, env.From.Short()))
			return
		}
		for _, e := range entries {
			ck.observeEnvelope(e.Env)
		}
	case consensus.KindNewView:
		// Re-issued pre-prepares ride inside the NewView body and are
		// never broadcast on their own: unpack them so a conflicting
		// re-issue cannot hide from the trace check.
		var m pbft.NewView
		if !decodeBody(env, &m) {
			return
		}
		for _, raw := range m.PrePrepares {
			inner, err := consensus.DecodeEnvelope(raw)
			if err != nil {
				continue
			}
			ck.observeEnvelope(inner)
		}
	}
}

func (ck *Checker) note(from gcrypto.Address, kind consensus.MsgKind, era, view, seq uint64, digest gcrypto.Hash) {
	if ck.allowed[from] {
		return
	}
	id := VoteID{Sender: from, Kind: kind, Era: era, View: view, Seq: seq}
	prev, ok := ck.seen[id]
	if !ok {
		ck.seen[id] = digest
		return
	}
	if prev != digest {
		ck.violations = append(ck.violations, fmt.Sprintf(
			"double-sign: %s signed two %s votes for era=%d view=%d seq=%d (%s vs %s)",
			from.Short(), kind, era, view, seq, prev.Short(), digest.Short()))
	}
}

// decodeBody decodes an envelope body without verifying the signature:
// the Tap only ever sees envelopes genuinely emitted by the simulated
// process that signed them.
func decodeBody(env *consensus.Envelope, dst interface {
	UnmarshalCanonical(*codec.Reader) error
}) bool {
	r := codec.NewReader(env.Body)
	if dst.UnmarshalCanonical(r) != nil {
		return false
	}
	return r.Finish() == nil
}

// Violations returns the accumulated safety violations.
func (ck *Checker) Violations() []string {
	return append([]string(nil), ck.violations...)
}

// VoteCount returns how many distinct vote slots have been observed
// (a sanity signal that the checker is actually seeing traffic).
func (ck *Checker) VoteCount() int { return len(ck.seen) }
