package chaos_test

import (
	"fmt"
	"testing"
	"time"

	"gpbft/internal/chaos"
)

// TestRandomSchedules runs seeded random crash/restart/partition/heal
// schedules against clusters of several sizes. Every step re-checks
// the safety invariants; after the fault phase the cluster must heal,
// converge and commit again. A failure message always names the seed
// so the exact run can be replayed.
func TestRandomSchedules(t *testing.T) {
	cases := []struct {
		nodes int
		seed  int64
		drop  float64
	}{
		{nodes: 4, seed: 1, drop: 0},
		{nodes: 7, seed: 7, drop: 0.01},
		{nodes: 16, seed: 42, drop: 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("n=%d seed=%d", tc.nodes, tc.seed), func(t *testing.T) {
			c, err := chaos.New(chaos.Options{Nodes: tc.nodes, Seed: tc.seed, DropRate: tc.drop})
			if err != nil {
				t.Fatal(err)
			}
			c.RunFor(50 * time.Millisecond)
			if err := c.RunRandomSchedule(40); err != nil {
				t.Fatalf("seed %d (nodes=%d, drop=%v): %v", tc.seed, tc.nodes, tc.drop, err)
			}
			if c.Checker().VoteCount() == 0 {
				t.Fatalf("seed %d: checker observed no votes — harness is not watching the trace", tc.seed)
			}
		})
	}
}

// TestRandomScheduleWithEraSwitches layers forced era switches under
// the fault schedule: restarts now cross era boundaries, exercising
// WAL rotation and era rejoin.
func TestRandomScheduleWithEraSwitches(t *testing.T) {
	c, err := chaos.New(chaos.Options{Nodes: 5, Seed: 23, EnableEraSwitch: true})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(50 * time.Millisecond)
	if err := c.RunRandomSchedule(25); err != nil {
		t.Fatalf("seed 23 (era switches on): %v", err)
	}
}

// midInstanceCrash drives the scripted schedule both regression-guard
// tests share: the view-0 primary proposes, is killed before the
// round completes, and comes back while the surviving quorum commits
// its proposal. It returns the cluster and the primary's index with
// the primary already restarted (amnesia or durable, per the flag)
// and a conflicting transaction submitted through it.
func midInstanceCrash(t *testing.T, amnesia bool) (*chaos.Cluster, int) {
	t.Helper()
	c, err := chaos.New(chaos.Options{Nodes: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(50 * time.Millisecond)
	p := c.PrimaryIndex(0)
	if p < 0 {
		t.Fatal("no primary resolved for view 0")
	}

	// The primary proposes block 1 and dies with the pre-prepare on
	// the wire: its vote is out in the world, its memory is gone.
	c.Submit(p, []byte("payload-a"))
	c.Crash(p)
	// The surviving 3-of-4 quorum prepares and commits the proposal.
	c.RunFor(500 * time.Millisecond)
	if h := c.Height((p + 1) % 4); h != 1 {
		t.Fatalf("setup: surviving quorum at height %d, want 1", h)
	}

	// The primary reboots mid-instance and receives a different
	// transaction for the same slot it already proposed in.
	if err := c.Restart(p, amnesia); err != nil {
		t.Fatal(err)
	}
	c.Submit(p, []byte("payload-b"))
	c.RunUntilIdleFor(10 * time.Second)
	return c, p
}

// TestCrashedPrimaryWithWALStaysSafe: with the consensus WAL, the
// restarted primary recovers its sent-vote ledger, refuses to propose
// a second block for (view 0, seq 1), catches up over block sync, and
// proposes the new transaction at the next height instead. No
// equivocation appears in the trace and the chain keeps growing.
func TestCrashedPrimaryWithWALStaysSafe(t *testing.T) {
	c, _ := midInstanceCrash(t, false)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("WAL-backed restart violated safety: %v", err)
	}
	if v := c.Checker().Violations(); len(v) > 0 {
		t.Fatalf("WAL-backed restart double-signed: %v", v)
	}
	if h := c.MinHeight(); h < 2 {
		t.Fatalf("cluster stuck at height %d: recovered primary never re-proposed (liveness lost)", h)
	}
}

// TestAmnesiaPrimaryWithoutWALDoubleSigns is the regression guard for
// the whole WAL mechanism: the identical schedule with the vote log
// wiped at restart makes the primary re-propose a DIFFERENT block for
// the slot it already proposed in — a detectable double-sign. If this
// test ever starts passing the invariant check, the chaos harness has
// lost the ability to see the fault the WAL exists to prevent.
func TestAmnesiaPrimaryWithoutWALDoubleSigns(t *testing.T) {
	c, p := midInstanceCrash(t, true)
	v := c.Checker().Violations()
	if len(v) == 0 {
		t.Fatalf("amnesia restart of node %d produced no double-sign: either the harness missed it or the engine is durable without its WAL", p)
	}
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("invariant check passed despite equivocation in the trace")
	}
}
