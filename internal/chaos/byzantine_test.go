package chaos_test

import (
	"testing"
	"time"

	"gpbft/internal/byzantine"
	"gpbft/internal/chaos"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
)

// byzStep drives one 200ms slice of the accountability schedule: every
// committee member files a location report (so the honest ones keep
// re-qualifying at era elections), node 0 submits consensus traffic
// (so votes — and doubled votes — keep flowing), and the Sybil pair
// files its simultaneous same-cell reports through two different
// endorsers.
func byzStep(c *chaos.Cluster, pair *byzantine.SybilPair, step int) {
	for i := 0; i < 7; i++ {
		c.SubmitReport(i)
	}
	c.Submit(0, []byte{byte(step), byte(step >> 8)})
	a, b := pair.Reports(c.Epoch().Add(c.Now()))
	c.SubmitRawTx(0, a)
	c.SubmitRawTx(2, b)
	c.RunFor(200 * time.Millisecond)
}

func isEndorser(c *chaos.Cluster, node int, addr gcrypto.Address) bool {
	for _, e := range c.Chain(node).Endorsers() {
		if e.Address == addr {
			return true
		}
	}
	return false
}

// TestByzantineAccountabilityExpulsion is the end-to-end acceptance run
// for the misbehavior pipeline: an n=7 committee with one double-voting
// endorser plus an external Sybil pair must (1) keep safety — no fork,
// no honest equivocation; (2) commit self-verifying evidence convicting
// all three identities; and (3) expel the double-voter from every
// committee within two era switches of its conviction, refusing
// readmission thereafter.
func TestByzantineAccountabilityExpulsion(t *testing.T) {
	c, err := chaos.New(chaos.Options{
		Nodes:           7,
		Seed:            99,
		EnableEraSwitch: true,
		DoubleVoters:    []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	dv := c.Address(1)
	pair := &byzantine.SybilPair{
		A: gcrypto.DeterministicKeyPair(100),
		B: gcrypto.DeterministicKeyPair(101),
		// A corner cell of the deployment area no committee member
		// occupies, so only the pair ever collides there.
		Cell: geo.Point{Lng: 114.1706, Lat: 22.3094},
	}
	sybA, sybB := pair.Addresses()

	// Phase 1: drive load until all three offenders are convicted by
	// committed evidence on node 0's chain.
	convicted := false
	for step := 0; step < 150 && !convicted; step++ {
		byzStep(c, pair, step)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		ch := c.Chain(0)
		convicted = ch.IsBanned(dv) && ch.IsBanned(sybA) && ch.IsBanned(sybB)
	}
	if !convicted {
		ch := c.Chain(0)
		t.Fatalf("offenders not all convicted: dv=%v sybilA=%v sybilB=%v (evidence=%d, era=%d, height=%d)",
			ch.IsBanned(dv), ch.IsBanned(sybA), ch.IsBanned(sybB),
			ch.EvidenceCount(), ch.Era(), ch.Height())
	}

	// Phase 2: K=2 more era switches must complete, after which the
	// double-voter may sit in no committee.
	target := c.Chain(0).Era() + 2
	for step := 0; step < 300 && c.Chain(0).Era() < target; step++ {
		byzStep(c, pair, step)
	}
	if got := c.Chain(0).Era(); got < target {
		t.Fatalf("era stalled at %d, want >= %d — expulsion never took effect", got, target)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("after expulsion: %v", err)
	}

	for i := 0; i < 7; i++ {
		ch := c.Chain(i)
		if !ch.IsBanned(dv) || !ch.IsBanned(sybA) || !ch.IsBanned(sybB) {
			t.Fatalf("node %d blacklist diverged: dv=%v sybilA=%v sybilB=%v",
				i, ch.IsBanned(dv), ch.IsBanned(sybA), ch.IsBanned(sybB))
		}
		if ch.EvidenceCount() == 0 {
			t.Fatalf("node %d has no committed evidence", i)
		}
		for _, bad := range []gcrypto.Address{dv, sybA, sybB} {
			if isEndorser(c, i, bad) {
				t.Fatalf("node %d still lists convicted %s as endorser in era %d",
					i, bad.Short(), ch.Era())
			}
		}
	}
}

// TestByzantineAccountabilityAblation re-runs the same schedule with
// Policy.DisableExpulsion set: evidence must still be detected and
// committed (the ledger keeps the conviction), but enforcement is off,
// so the double-voter keeps its committee seat across era switches.
// This isolates the enforcement layer's contribution.
func TestByzantineAccountabilityAblation(t *testing.T) {
	c, err := chaos.New(chaos.Options{
		Nodes:            7,
		Seed:             99,
		EnableEraSwitch:  true,
		DoubleVoters:     []int{1},
		DisableExpulsion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dv := c.Address(1)
	pair := &byzantine.SybilPair{
		A:    gcrypto.DeterministicKeyPair(100),
		B:    gcrypto.DeterministicKeyPair(101),
		Cell: geo.Point{Lng: 114.1706, Lat: 22.3094},
	}

	convictedAt := uint64(0)
	for step := 0; step < 150; step++ {
		byzStep(c, pair, step)
		if c.Chain(0).IsBanned(dv) {
			convictedAt = c.Chain(0).Era()
			break
		}
	}
	if !c.Chain(0).IsBanned(dv) {
		t.Fatal("evidence pipeline disabled too: double-voter never convicted")
	}

	// Two further era switches with enforcement off: the convicted
	// endorser must still be seated.
	target := convictedAt + 2
	for step := 0; step < 300 && c.Chain(0).Era() < target; step++ {
		byzStep(c, pair, step)
	}
	if got := c.Chain(0).Era(); got < target {
		t.Fatalf("era stalled at %d, want >= %d", got, target)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("ablation run lost safety: %v", err)
	}
	if !isEndorser(c, 0, dv) {
		t.Fatal("DisableExpulsion set, but the convicted endorser was expelled anyway")
	}
}
