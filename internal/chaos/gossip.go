package chaos

import (
	"fmt"
	"math"
	"time"
)

// GossipReport summarises a gossip chaos schedule: the relay counters
// summed over the committee and the message-complexity measurement the
// schedule asserts against.
type GossipReport struct {
	// Summed over nodes at the end of the fault phase (before the final
	// rolling restart, which rebuilds each node's relay).
	ForwardedFrames  uint64
	ForwardedEntries uint64
	Suppressed       uint64
	Dropped          uint64
	Delivered        uint64

	// Slots is the minimum committed height when the counters were
	// read; FramesPerNodePerSlot = ForwardedFrames / n / Slots.
	Slots                uint64
	FramesPerNodePerSlot float64
	// Fanout is the largest relay fanout in use; Bound = 4·f·log₂(n),
	// the complexity envelope the schedule enforces. All-to-all direct
	// broadcast would need (n−1) sends per broadcast and several
	// broadcasts per slot per node — quadratic in committee size.
	Fanout int
	Bound  float64

	// Victim progress across the partition window: the cut node's
	// committed height when the partition landed and when it healed.
	// Epidemic redundancy must route around the cut, so the victim
	// advances while more than f of its direct links are down.
	VictimHeightAtCut  uint64
	VictimHeightAtHeal uint64
}

// RunGossipSchedule drives the epidemic-dissemination property under
// faults: `steps` of load warm the cluster, then a victim node loses
// direct links to half the committee mid-window — more links than
// direct broadcast could tolerate — while load continues, then the cut
// heals and the run finishes with the standard rolling-restart
// recovery. The usual no-fork/height/durability invariants are checked
// every step, and on top of them the relay counters must stay within
// the f·n forwarding envelope (per-node frames per slot ≤ 4·f·log₂ n),
// not the n² of all-to-all. Requires Options.Gossip.
func (c *Cluster) RunGossipSchedule(steps int) (*GossipReport, error) {
	if !c.opts.Gossip {
		return nil, fmt.Errorf("chaos: gossip schedule needs Options.Gossip")
	}
	if steps < 4 {
		return nil, fmt.Errorf("chaos: gossip schedule needs steps >= 4")
	}
	n := c.opts.Nodes
	load := func(tag string, s int) {
		for i := range c.nodes {
			if !c.crashed[i] {
				c.Submit(i, []byte(fmt.Sprintf("gossip-%s-%d-%d", tag, i, s)))
			}
		}
	}

	// Phase 1: clean warm-up — every node broadcasts through the relay.
	for s := 0; s < steps; s++ {
		load("warm", s)
		c.RunFor(c.opts.StepInterval)
		if err := c.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("warm step %d: %w", s, err)
		}
	}

	// Phase 2: cut the victim's direct links to half the committee —
	// strictly more than f links, which all-to-all dissemination has no
	// answer to — and keep the load coming. The victim stays
	// fanout-connected through the remaining half, and every relay's
	// random targets include it, so epidemic forwarding routes its
	// traffic around the cut.
	rep := &GossipReport{}
	victim := (c.PrimaryIndex(0) + 1) % n
	rep.VictimHeightAtCut = c.Height(victim)
	cut := 0
	for j := 0; j < n && cut < n/2; j++ {
		if j != victim && j != c.PrimaryIndex(0) {
			c.Partition(victim, j)
			cut++
		}
	}
	for s := 0; s < steps; s++ {
		load("cut", s)
		c.RunFor(c.opts.StepInterval)
		if err := c.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("partition step %d: %w", s, err)
		}
	}
	rep.VictimHeightAtHeal = c.Height(victim)

	// Phase 3: heal and drain.
	c.HealAll()
	for s := 0; s < steps; s++ {
		load("heal", s)
		c.RunFor(c.opts.StepInterval)
		if err := c.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("heal step %d: %w", s, err)
		}
	}
	c.RunUntilIdleFor(10 * time.Second)
	if err := c.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("drain: %w", err)
	}

	// Read the relay counters before FinalRecovery's rolling restart
	// rebuilds every relay (the dupemap and its counters die with the
	// process, by design).
	for i := range c.nodes {
		st := c.nodes[i].Counters().Relay
		rep.ForwardedFrames += st.ForwardedFrames
		rep.ForwardedEntries += st.ForwardedEntries
		rep.Suppressed += st.Suppressed
		rep.Dropped += st.Dropped
		rep.Delivered += st.Delivered
		if f := c.nodes[i].Relay.Fanout(); f > rep.Fanout {
			rep.Fanout = f
		}
	}
	rep.Slots = c.MinHeight()
	if rep.Slots == 0 {
		return nil, fmt.Errorf("chaos: gossip schedule committed nothing")
	}
	rep.FramesPerNodePerSlot = float64(rep.ForwardedFrames) / float64(n) / float64(rep.Slots)
	rep.Bound = 4 * float64(rep.Fanout) * math.Log2(float64(n))
	if rep.FramesPerNodePerSlot > rep.Bound {
		return nil, fmt.Errorf("chaos: %.1f relay frames per node per slot exceeds 4·f·log2(n) = %.1f (f=%d, n=%d, slots=%d)",
			rep.FramesPerNodePerSlot, rep.Bound, rep.Fanout, n, rep.Slots)
	}
	if rep.ForwardedFrames == 0 || rep.Delivered == 0 {
		return nil, fmt.Errorf("chaos: gossip schedule never used the relay: %+v", rep)
	}

	return rep, c.FinalRecovery()
}
