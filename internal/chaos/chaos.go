package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gpbft/internal/byzantine"
	"gpbft/internal/consensus"
	"gpbft/internal/core"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/runtime"
	"gpbft/internal/simnet"
	"gpbft/internal/store"
	"gpbft/internal/types"
)

// Options configures a chaos cluster.
type Options struct {
	// Nodes is the committee size; 4..16.
	Nodes int
	// Seed drives both the network simulator and the fault schedule;
	// the same seed reproduces the same run bit for bit.
	Seed int64
	// StepInterval is the virtual time between schedule operations
	// (default 200ms).
	StepInterval time.Duration
	// DropRate is the background message-loss probability during the
	// fault phase ("drop" faults). Recovery runs on a clean network.
	DropRate float64
	// EnableEraSwitch runs forced era switches underneath the chaos,
	// exercising WAL rotation and era rejoin.
	EnableEraSwitch bool
	// DoubleVoters lists node indices that intentionally double-sign
	// every prepare and commit vote (byzantine.DoubleVoter). They are
	// exempted from the trace equivocation invariant — the property
	// under test becomes that the honest majority stays safe and
	// convicts them. Keep the count within f = ⌊(n−1)/3⌋.
	DoubleVoters []int
	// DisableExpulsion sets the genesis ablation knob: committed
	// evidence still accumulates, but offenders are never removed from
	// (or refused entry to) the committee.
	DisableExpulsion bool
	// Snapshots gives every node a durable snapshot store: era
	// boundaries write signed state snapshots, restarts boot from the
	// newest valid one, and deep catch-up goes snapshot-then-tail.
	Snapshots bool
	// RetainSnaps is the per-node snapshot retention depth (default 2).
	RetainSnaps int
	// FastSyncThreshold overrides the engine's snapshot-vs-tail gap
	// threshold (0 = engine default). Keep it small in chaos runs so
	// modest growth exercises the snapshot path.
	FastSyncThreshold uint64
	// Compact truncates each node's durable block log (and in-memory
	// chain) below its oldest retained snapshot at every era boundary,
	// making deep rejoin IMPOSSIBLE via block replay — peers redirect
	// block pulls from compacted ranges to the snapshot path.
	Compact bool
	// SnapshotLiars lists node indices that serve bit-flipped snapshot
	// bytes (byzantine.SnapshotLiar) while behaving honestly otherwise.
	// The property under test: receivers reject every lie and fall back
	// to block replay with no forked or partial state.
	SnapshotLiars []int
	// EraPeriod overrides the chain policy's era switch interval
	// (0 = policy default, 10s). Snapshot schedules shrink it so
	// growing ten eras stays a short virtual-time run.
	EraPeriod time.Duration
	// RateLimit turns on the overload armor on every node: per-identity
	// token-bucket admission at this sustained tx/s, a QoS-lane mempool
	// and the graceful-degradation shed controller. 0 keeps the plain
	// FIFO pool and unguarded submit path — the ablation baseline.
	RateLimit float64
	// RateBurst overrides the admission token-bucket depth (0 = default).
	RateBurst float64
	// MempoolCap bounds each node's pool when QoS is on (0 = default).
	MempoolCap int
	// BatchSize is the per-block transaction batch (0 = 1, the chaos
	// default; flood schedules raise it so sustained load can drain).
	BatchSize int
	// LaneWeights, FairShare and ShedThresholds pass through to the QoS
	// mempool and admission controller (zero values pick defaults).
	LaneWeights    [3]int
	FairShare      int
	ShedThresholds [3]float64
	// LatencyTarget enables commit-latency EWMA shed escalation (0 = off).
	LatencyTarget time.Duration
	// Gossip replaces direct all-to-all broadcast with the epidemic
	// relay on every node: fanout-f forwarding with round-scoped
	// duplicate suppression. Faults then hit a sparser, redundant
	// dissemination graph instead of n² direct links.
	Gossip bool
	// GossipFanout overrides the relay fanout (0 = auto, ~log₂ n).
	GossipFanout int
}

// slot is one node's durable storage: what survives a crash. The WAL
// holds consensus votes, blocks is the persisted block log, snaps the
// retained era snapshots, and base the height below which the block
// log has been compacted (blocks[0], when present, is height base+1).
// Everything else — mempool, vote tables, timers, sockets — dies with
// the process and is rebuilt from these on restart.
type slot struct {
	wal    *store.MemWAL
	blocks []*types.Block
	snaps  *store.MemSnapshots
	base   uint64
}

// top returns the height of the last durable block.
func (s *slot) top() uint64 { return s.base + uint64(len(s.blocks)) }

// Cluster is a simulated committee under fault injection. All nodes
// are genesis endorsers; each has a durable slot it reboots from.
type Cluster struct {
	opts    Options
	epoch   time.Time
	net     *simnet.Network
	rng     *rand.Rand
	genesis *ledger.Genesis

	keys      []*gcrypto.KeyPair
	positions []geo.Point

	slots    []*slot
	nodes    []*runtime.Node
	engines  []*core.Engine
	crashed  []bool
	high     []uint64 // committed-height high-water per node
	nonces   []uint64
	replayed []uint64 // cumulative blocks replayed at boot, per node
	parts    map[[2]int]bool
	checker  *Checker
}

// New builds and starts (at virtual time 0) a chaos cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Nodes < 4 || opts.Nodes > 16 {
		return nil, fmt.Errorf("chaos: Nodes must be in [4,16], got %d", opts.Nodes)
	}
	if opts.StepInterval == 0 {
		opts.StepInterval = 200 * time.Millisecond
	}
	c := &Cluster{
		opts:     opts,
		epoch:    time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC),
		rng:      rand.New(rand.NewSource(opts.Seed ^ 0x5eed)),
		slots:    make([]*slot, opts.Nodes),
		nodes:    make([]*runtime.Node, opts.Nodes),
		engines:  make([]*core.Engine, opts.Nodes),
		crashed:  make([]bool, opts.Nodes),
		high:     make([]uint64, opts.Nodes),
		nonces:   make([]uint64, opts.Nodes),
		replayed: make([]uint64, opts.Nodes),
		parts:    make(map[[2]int]bool),
		checker:  NewChecker(),
	}
	c.net = simnet.New(simnet.Config{
		Seed: opts.Seed,
		Latency: simnet.UniformLatency{
			Base:   time.Millisecond,
			Jitter: 500 * time.Microsecond,
		},
		ProcTime: 100 * time.Microsecond,
		SendTime: 20 * time.Microsecond,
		DropRate: opts.DropRate,
		Tap:      c.checker.Observe,
	})

	c.positions = gridLayout(opts.Nodes)
	c.keys = make([]*gcrypto.KeyPair, opts.Nodes)
	for i := range c.keys {
		c.keys[i] = gcrypto.DeterministicKeyPair(i)
	}

	g := &ledger.Genesis{
		ChainID:   fmt.Sprintf("gpbft-chaos-%d", opts.Seed),
		Timestamp: c.epoch,
		Policy:    ledger.DefaultPolicy(),
	}
	if opts.Nodes > g.Policy.MaxEndorsers {
		g.Policy.MaxEndorsers = opts.Nodes
	}
	g.Policy.EraPeriod = time.Second
	g.Policy.SwitchPeriod = 50 * time.Millisecond
	g.Policy.DisableExpulsion = opts.DisableExpulsion
	for i := 0; i < opts.Nodes; i++ {
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: c.keys[i].Address(),
			PubKey:  c.keys[i].Public(),
			Geohash: geo.MustEncode(c.positions[i], geo.CSCPrecision),
		})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	c.genesis = g

	for _, dv := range opts.DoubleVoters {
		if dv < 0 || dv >= opts.Nodes {
			return nil, fmt.Errorf("chaos: DoubleVoters index %d out of range", dv)
		}
		c.checker.Allow(c.keys[dv].Address())
	}
	for _, sl := range opts.SnapshotLiars {
		if sl < 0 || sl >= opts.Nodes {
			return nil, fmt.Errorf("chaos: SnapshotLiars index %d out of range", sl)
		}
	}

	for i := 0; i < opts.Nodes; i++ {
		c.slots[i] = &slot{wal: &store.MemWAL{}}
		if opts.Snapshots {
			c.slots[i].snaps = store.NewMemSnapshots(opts.RetainSnaps)
		}
		if err := c.boot(i, false); err != nil {
			return nil, err
		}
		c.net.AddNode(c.keys[i].Address(), c.nodes[i])
	}
	c.net.Schedule(0, func(now consensus.Time) {
		for _, n := range c.nodes {
			n.Start(now)
		}
	})
	return c, nil
}

// gridLayout spreads n nodes over a small urban region, one CSC cell
// apart, mirroring the paper's deployment layout.
func gridLayout(n int) []geo.Point {
	const minLng, maxLng, minLat, maxLat = 114.170, 114.180, 22.300, 22.310
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	dLng := (maxLng - minLng) / float64(cols+1)
	dLat := (maxLat - minLat) / float64(cols+1)
	out := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		out[i] = geo.Point{
			Lng: minLng + dLng*float64(i%cols+1),
			Lat: minLat + dLat*float64(i/cols+1),
		}
	}
	return out
}

// boot builds node i's incarnation from its durable slot only: restore
// the newest valid snapshot (when snapshots are on), replay the block
// log on top of it, then hand the engine the WAL and its recovered
// records. Blocks below the restore point — or disconnected from it,
// as when every local snapshot is corrupt but the log was already
// compacted — are skipped; the engine's sync machinery covers the rest
// from peers. With amnesia=true the consensus WAL is wiped first — the
// configuration the regression-guard tests prove unsafe.
func (c *Cluster) boot(i int, amnesia bool) error {
	s := c.slots[i]
	if amnesia {
		s.wal = &store.MemWAL{}
	}
	var chain *ledger.Chain
	var err error
	if s.snaps != nil {
		if snap, serr := s.snaps.Latest(); serr == nil && snap != nil {
			chain, err = ledger.RestoreChain(c.genesis, snap.State)
		}
	}
	if chain == nil && err == nil {
		chain, err = ledger.NewChain(c.genesis)
	}
	if err != nil {
		return err
	}
	for _, b := range s.blocks {
		if b.Header.Height != chain.Height()+1 {
			continue
		}
		if err := chain.AddBlock(b); err != nil {
			return fmt.Errorf("chaos: node %d replay height %d: %w", i, b.Header.Height, err)
		}
		c.replayed[i]++
	}
	kp := c.keys[i]
	pool := runtime.NewMempool(0)
	if c.opts.RateLimit > 0 {
		pool = runtime.NewMempoolQoS(c.opts.MempoolCap, 0, runtime.QoSConfig{
			LaneWeights: c.opts.LaneWeights,
			FairShare:   c.opts.FairShare,
		})
	}
	batch := 1
	if c.opts.BatchSize > 0 {
		batch = c.opts.BatchSize
	}
	app := runtime.NewApp(chain, pool, kp.Address(), c.epoch, batch)
	cfg := core.Config{
		Chain:              chain,
		Key:                kp,
		App:                app,
		Timers:             consensus.NewTimerAllocator(),
		Epoch:              c.epoch,
		CheckpointInterval: 4,
		ViewChangeTimeout:  500 * time.Millisecond,
		ProposerPolicy:     core.ProposerAddress,
		DisableEraSwitch:   !c.opts.EnableEraSwitch,
		ForceEraSwitch:     c.opts.EnableEraSwitch,
		EraPeriod:          c.opts.EraPeriod,
	}
	if !amnesia {
		cfg.WAL = s.wal
		cfg.Recovered = s.wal.Records()
	}
	if s.snaps != nil {
		cfg.Snapshots = s.snaps
		cfg.FastSyncThreshold = c.opts.FastSyncThreshold
	}
	eng, err := core.New(cfg)
	if err != nil {
		return err
	}
	var engine consensus.Engine = eng
	for _, dv := range c.opts.DoubleVoters {
		if dv == i {
			// The wrapper survives restarts: a rebooted double-voter
			// comes back just as malicious.
			engine = &byzantine.DoubleVoter{Inner: eng, Key: kp}
			break
		}
	}
	for _, sl := range c.opts.SnapshotLiars {
		if sl == i {
			engine = &byzantine.SnapshotLiar{Inner: engine, Key: kp}
			break
		}
	}
	node := &runtime.Node{
		ID: kp.Address(), Key: kp, App: app, Engine: engine,
		Exec: c.net.Executor(kp.Address()),
	}
	if c.opts.Gossip {
		peers := make([]gcrypto.Address, len(c.genesis.Endorsers))
		for k := range c.genesis.Endorsers {
			peers[k] = c.genesis.Endorsers[k].Address
		}
		// A restart builds a fresh relay: the dupemap dies with the
		// process, and re-delivered duplicates are absorbed by the
		// engine's idempotent vote tables. The seed is per-node and
		// stable across incarnations so reruns stay bit-for-bit.
		node.Relay = consensus.NewRelay(consensus.RelayConfig{
			Self:   kp.Address(),
			Peers:  peers,
			Fanout: c.opts.GossipFanout,
			Seed:   c.opts.Seed ^ int64(uint64(i+1)*0x9e3779b97f4a7c15),
		})
	}
	if c.opts.RateLimit > 0 {
		adm := runtime.NewAdmission(runtime.AdmissionConfig{
			Rate:           c.opts.RateLimit,
			Burst:          c.opts.RateBurst,
			ShedThresholds: c.opts.ShedThresholds,
			LatencyTarget:  c.opts.LatencyTarget,
		})
		adm.BindPool(pool)
		adm.BindInFlight(eng.InFlight)
		node.Admission = adm
	}
	node.OnCommit = func(_ consensus.Time, b *types.Block) {
		s.blocks = append(s.blocks, b)
	}
	if s.snaps != nil {
		// Every era bump publishes a signed snapshot of the canonical
		// chain state, exported at the config block itself (ledger
		// hook) so all nodes snapshot the identical (height, root)
		// pair no matter how the block reached them — the exact-pair
		// quorum fast sync anchors trust in depends on it.
		chain.SetEraBumpHook(func(st *ledger.ChainState) {
			if st.Height() == 0 {
				return
			}
			_ = s.snaps.Add(store.NewSnapshot(st, kp))
		})
		// Compaction is local hygiene, not consensus state: it rides
		// the (timing-skewed) era-switch callback, outside the chain
		// lock. With it on, history below the oldest retained snapshot
		// is truncated — restarts must come back through a snapshot,
		// exactly the restart-at-scale regime under test.
		node.OnEraSwitch = func(_ consensus.Time, _ uint64, _ []gcrypto.Address) {
			if c.opts.Compact {
				if floor := s.snaps.OldestHeight(); floor > s.base {
					chain.CompactBelow(floor)
					kept := make([]*types.Block, 0, len(s.blocks))
					for _, b := range s.blocks {
						if b.Header.Height > floor {
							kept = append(kept, b)
						}
					}
					s.blocks = kept
					s.base = floor
				}
			}
		}
		// A fast-sync install replaces the chain wholesale: the durable
		// block log restarts empty at the new base (the snapshot itself
		// is the durable history below it).
		node.OnSnapshotInstall = func(_ consensus.Time, _, height uint64) {
			s.blocks = nil
			s.base = height
		}
	}
	c.nodes[i] = node
	c.engines[i] = eng
	return nil
}

// --- fault operations ---

func (c *Cluster) addr(i int) gcrypto.Address { return c.keys[i].Address() }

// Crash fail-stops node i: it drops all traffic and its pending timers
// die with the process.
func (c *Cluster) Crash(i int) {
	if c.crashed[i] {
		return
	}
	c.net.Crash(c.addr(i))
	c.crashed[i] = true
}

// Restart reboots node i as a fresh incarnation built from its durable
// slot. A running node is killed first (a restart implies a crash).
// With amnesia=true the consensus WAL is discarded too, modeling an
// operator who lost the vote log but kept the block log.
func (c *Cluster) Restart(i int, amnesia bool) error {
	if !c.crashed[i] {
		c.net.Crash(c.addr(i))
		c.crashed[i] = true
	}
	if err := c.boot(i, amnesia); err != nil {
		return err
	}
	c.net.Restart(c.addr(i), c.nodes[i])
	c.crashed[i] = false
	c.nodes[i].Start(c.net.Now())
	return nil
}

// Partition blocks traffic between nodes i and j.
func (c *Cluster) Partition(i, j int) {
	if i == j {
		return
	}
	if j < i {
		i, j = j, i
	}
	c.parts[[2]int{i, j}] = true
	c.net.Partition(c.addr(i), c.addr(j))
}

// HealAll removes every active partition.
func (c *Cluster) HealAll() {
	for p := range c.parts {
		c.net.Heal(c.addr(p[0]), c.addr(p[1]))
		delete(c.parts, p)
	}
}

// Submit injects a signed transaction through node i (must be live).
func (c *Cluster) Submit(i int, payload []byte) {
	if c.crashed[i] {
		return
	}
	c.nonces[i]++
	tx := &types.Transaction{
		Type:    types.TxNormal,
		Nonce:   c.nonces[i],
		Payload: payload,
		Fee:     1,
		Geo: types.GeoInfo{
			Location:  c.positions[i],
			Timestamp: c.epoch.Add(c.net.Now()),
		},
	}
	tx.Sign(c.keys[i])
	_ = c.nodes[i].Submit(c.net.Now(), tx)
}

// SubmitReport injects node i's own periodic location report, feeding
// the election table so the node keeps re-qualifying across era
// switches.
func (c *Cluster) SubmitReport(i int) {
	if c.crashed[i] {
		return
	}
	c.nonces[i]++
	tx := &types.Transaction{
		Type:  types.TxLocationReport,
		Nonce: c.nonces[i],
		Geo: types.GeoInfo{
			Location:  c.positions[i],
			Timestamp: c.epoch.Add(c.net.Now()),
		},
	}
	tx.Sign(c.keys[i])
	_ = c.nodes[i].Submit(c.net.Now(), tx)
}

// SubmitRawTx injects a pre-signed transaction through live node i —
// how external identities (Sybil pairs, spoofers) reach the committee.
func (c *Cluster) SubmitRawTx(i int, tx *types.Transaction) {
	if c.crashed[i] {
		return
	}
	_ = c.nodes[i].Submit(c.net.Now(), tx)
}

// RunFor advances virtual time by d, processing events.
func (c *Cluster) RunFor(d time.Duration) {
	c.net.Run(c.net.Now() + d)
}

// RunUntilIdleFor processes events until quiescence or until d of
// virtual time has elapsed.
func (c *Cluster) RunUntilIdleFor(d time.Duration) {
	c.net.RunUntilIdle(c.net.Now() + d)
}

// --- accessors ---

// Height returns node i's committed chain height.
func (c *Cluster) Height(i int) uint64 { return c.nodes[i].App.Chain().Height() }

// MinHeight returns the lowest committed height across nodes.
func (c *Cluster) MinHeight() uint64 {
	min := c.Height(0)
	for i := 1; i < len(c.nodes); i++ {
		if h := c.Height(i); h < min {
			min = h
		}
	}
	return min
}

// Chain returns node i's ledger (evidence, blacklist, committee state).
func (c *Cluster) Chain(i int) *ledger.Chain { return c.nodes[i].App.Chain() }

// Address returns node i's chain address.
func (c *Cluster) Address(i int) gcrypto.Address { return c.addr(i) }

// Epoch returns the wall-clock anchor of virtual time 0.
func (c *Cluster) Epoch() time.Time { return c.epoch }

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.net.Now() }

// Checker exposes the trace equivocation checker.
func (c *Cluster) Checker() *Checker { return c.checker }

// PrimaryIndex returns the node index acting as primary for the given
// view in the current era (ProposerAddress rotation).
func (c *Cluster) PrimaryIndex(view uint64) int {
	for _, e := range c.engines {
		if com := e.Committee(); com != nil {
			p := com.Primary(view)
			for i := range c.keys {
				if c.addr(i) == p {
					return i
				}
			}
		}
	}
	return -1
}

// --- invariants ---

// CheckInvariants asserts the crash-recovery safety properties:
//
//  1. no double-signed conflicting votes anywhere in the trace;
//  2. no commit errors (a fork detected by a node's own ledger);
//  3. durability lockstep: every committed block was persisted before
//     the commit was acknowledged, so in-memory height always equals
//     durable height;
//  4. no committed-height regression across restarts;
//  5. no fork: all durable block logs agree on every shared height.
func (c *Cluster) CheckInvariants() error {
	if v := c.checker.Violations(); len(v) > 0 {
		return fmt.Errorf("equivocation in trace: %s", v[0])
	}
	ref := 0
	for i := range c.slots {
		if c.slots[i].top() > c.slots[ref].top() {
			ref = i
		}
	}
	rs := c.slots[ref]
	for i, s := range c.slots {
		if err := c.nodes[i].CommitErr; err != nil {
			return fmt.Errorf("node %d commit error: %w", i, err)
		}
		if got := c.Height(i); got != s.top() {
			return fmt.Errorf("node %d: in-memory height %d != durable height %d", i, got, s.top())
		}
		if s.top() < c.high[i] {
			return fmt.Errorf("node %d: committed height regressed %d -> %d", i, c.high[i], s.top())
		}
		c.high[i] = s.top()
		for k, b := range s.blocks {
			h := s.base + uint64(k) + 1
			if b.Header.Height != h {
				return fmt.Errorf("node %d: durable log gap at position %d (height %d, base %d)", i, k, b.Header.Height, s.base)
			}
			// Fork detection over the heights both logs retain; heights
			// the reference has compacted are vouched for by its
			// snapshot (which a quorum had to co-sign off on via heads).
			if h > rs.base && h <= rs.top() {
				if b.Hash() != rs.blocks[h-rs.base-1].Hash() {
					return fmt.Errorf("fork: nodes %d and %d disagree at height %d", i, ref, h)
				}
			}
		}
	}
	return nil
}

// --- schedules ---

// RunRandomSchedule drives `steps` seeded random fault operations,
// checking invariants after every step, then heals everything and
// verifies the cluster is live and convergent again.
func (c *Cluster) RunRandomSchedule(steps int) error {
	f := (c.opts.Nodes - 1) / 3
	for s := 0; s < steps; s++ {
		c.stepOp(s, f)
		c.RunFor(c.opts.StepInterval)
		if err := c.CheckInvariants(); err != nil {
			return fmt.Errorf("step %d: %w", s, err)
		}
	}
	return c.FinalRecovery()
}

func (c *Cluster) stepOp(s, f int) {
	switch r := c.rng.Intn(100); {
	case r < 35:
		if i := c.randLive(); i >= 0 {
			c.Submit(i, []byte(fmt.Sprintf("chaos-%d", s)))
		}
	case r < 50:
		if c.crashedCount() < f {
			if i := c.randLive(); i >= 0 {
				c.Crash(i)
			}
		}
	case r < 65:
		if i := c.randCrashed(); i >= 0 {
			_ = c.Restart(i, false)
		}
	case r < 80:
		if len(c.parts) < f {
			i := c.rng.Intn(c.opts.Nodes)
			j := c.rng.Intn(c.opts.Nodes)
			c.Partition(i, j)
		}
	case r < 90:
		for p := range c.parts {
			c.net.Heal(c.addr(p[0]), c.addr(p[1]))
			delete(c.parts, p)
			break
		}
	default:
		// Quiet step: let timers fire and views settle.
	}
}

// RunPipelinedSchedule targets the consensus pipelining window: a
// transaction burst deep enough to keep several sequence numbers in
// flight at once (per-block batch is 1 here, so every pending tx is
// its own slot), then a crash and a partition landing mid-window, a
// heal-and-restart, and a second burst. The invariant checks prove the
// split window neither forks nor double-executes: commits stream in
// order on every node, and the rebooted node replays its WAL into a
// window that moved on without it.
func (c *Cluster) RunPipelinedSchedule() error {
	f := (c.opts.Nodes - 1) / 3
	burst := func(tag string, n int) {
		for k := 0; k < n; k++ {
			if i := c.randLive(); i >= 0 {
				c.Submit(i, []byte(fmt.Sprintf("pipe-%s-%d", tag, k)))
			}
		}
	}

	// Fill the window and let a few slots start their phases.
	burst("warm", 12)
	c.RunFor(c.opts.StepInterval)
	if err := c.CheckInvariants(); err != nil {
		return fmt.Errorf("mid-burst: %w", err)
	}

	// Faults strike mid-window: one backup dies with in-flight slots in
	// its WAL; another is cut off from part of the committee. Stay
	// within f so the rest keep committing through the split window.
	faults := 0
	if faults < f {
		c.Crash(1)
		faults++
	}
	if faults < f {
		c.Partition(2, 0)
		c.Partition(2, 3)
		faults++
	}
	burst("faulted", 12)
	c.RunFor(4 * c.opts.StepInterval)
	if err := c.CheckInvariants(); err != nil {
		return fmt.Errorf("mid-window faults: %w", err)
	}

	// Heal and reboot: the crashed node recovers prepared-but-unexecuted
	// slots from its WAL and must slot back into the stream without
	// skipping or re-executing anything.
	c.HealAll()
	if err := c.Restart(1, false); err != nil {
		return err
	}
	burst("healed", 12)
	c.RunFor(4 * c.opts.StepInterval)
	if err := c.CheckInvariants(); err != nil {
		return fmt.Errorf("after heal: %w", err)
	}
	return c.FinalRecovery()
}

func (c *Cluster) crashedCount() int {
	n := 0
	for _, down := range c.crashed {
		if down {
			n++
		}
	}
	return n
}

func (c *Cluster) randLive() int {
	live := make([]int, 0, len(c.crashed))
	for i, down := range c.crashed {
		if !down {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return -1
	}
	return live[c.rng.Intn(len(live))]
}

func (c *Cluster) randCrashed() int {
	down := make([]int, 0, len(c.crashed))
	for i, d := range c.crashed {
		if d {
			down = append(down, i)
		}
	}
	if len(down) == 0 {
		return -1
	}
	return down[c.rng.Intn(len(down))]
}

// FinalRecovery ends the fault phase: it heals every partition, stops
// background drops, reboots every node from durable state (forcing
// each through WAL recovery and block-sync catch-up), then proves
// liveness by committing one more transaction on every node.
func (c *Cluster) FinalRecovery() error {
	c.HealAll()
	c.net.SetDropRate(0)
	for i := range c.nodes {
		if c.crashed[i] {
			if err := c.Restart(i, false); err != nil {
				return err
			}
		}
	}
	c.RunFor(2 * time.Second)
	// Rolling restart: every node must come back from its durable slot
	// and catch up to the head via sync.
	for i := range c.nodes {
		if err := c.Restart(i, false); err != nil {
			return err
		}
		c.RunFor(200 * time.Millisecond)
	}
	c.RunUntilIdleFor(10 * time.Second)
	if err := c.CheckInvariants(); err != nil {
		return fmt.Errorf("after recovery: %w", err)
	}

	// Liveness: every node must advance past the healed baseline. A
	// lagging replica catches up via lag-triggered block sync, which
	// only fires when traffic reveals the gap — so the probe retries
	// with fresh transactions before declaring a node stuck (the
	// parallel verification stack makes batch completion order, and
	// therefore which slot a node trails at when the chain goes idle,
	// scheduler-dependent).
	before := c.MinHeight()
	for attempt := 0; ; attempt++ {
		probe := []byte("liveness-probe")
		if attempt > 0 {
			probe = append(probe, byte(attempt))
		}
		c.Submit(c.liveSubmitter(), probe)
		c.RunUntilIdleFor(30 * time.Second)
		if err := c.CheckInvariants(); err != nil {
			return fmt.Errorf("after liveness probe: %w", err)
		}
		stuck := -1
		for i := range c.nodes {
			if c.Height(i) <= before {
				stuck = i
				break
			}
		}
		if stuck < 0 {
			return nil
		}
		if attempt >= 4 {
			return fmt.Errorf("liveness: node %d stuck at height %d after healing (%d probes never committed)", stuck, c.Height(stuck), attempt+1)
		}
	}
}

// liveSubmitter picks a deterministic live node to submit through.
func (c *Cluster) liveSubmitter() int {
	for i := range c.nodes {
		if !c.crashed[i] {
			return i
		}
	}
	return 0
}
