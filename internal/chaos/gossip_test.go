package chaos

import (
	"testing"
	"time"
)

func gossipOpts(seed int64) Options {
	return Options{
		Nodes:        7,
		Seed:         seed,
		StepInterval: 200 * time.Millisecond,
		Gossip:       true,
	}
}

// The headline gossip chaos property: a victim node loses direct links
// to half the committee — more than f links, fatal for point-to-point
// dissemination — yet keeps committing because relays route its
// traffic around the cut. The run stays within the f·n forwarding
// envelope (asserted inside the schedule), fork-free, and recovers.
func TestGossipPartitionSchedule(t *testing.T) {
	c, err := New(gossipOpts(9001))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunGossipSchedule(8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gossip report: %+v", rep)
	if rep.VictimHeightAtHeal <= rep.VictimHeightAtCut {
		t.Fatalf("victim made no progress across the partition window (%d -> %d): epidemic routing failed",
			rep.VictimHeightAtCut, rep.VictimHeightAtHeal)
	}
	if rep.Suppressed == 0 {
		t.Fatalf("epidemic redundancy produced no dupemap hits: %+v", rep)
	}
}

// An explicit small fanout still satisfies the complexity bound and
// the partition property — the knob is honored, not just the auto
// setting.
func TestGossipFixedFanoutSchedule(t *testing.T) {
	opts := gossipOpts(9002)
	opts.GossipFanout = 3
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunGossipSchedule(6)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gossip report: %+v", rep)
	if rep.Fanout != 3 {
		t.Fatalf("fanout override ignored: got %d, want 3", rep.Fanout)
	}
}

// The schedule refuses to run without gossip: its assertions are about
// the relay and would vacuously pass on the direct path.
func TestGossipScheduleRequiresGossip(t *testing.T) {
	c, err := New(Options{Nodes: 7, Seed: 9003})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunGossipSchedule(4); err == nil {
		t.Fatal("gossip schedule must refuse to run without Options.Gossip")
	}
}

// Gossip under the generic random fault soup: crashes, restarts,
// partitions and background drops on top of relay dissemination. A
// restarted node comes back with a fresh dupemap and must absorb
// re-delivered duplicates through the engine's idempotent vote tables
// without forking.
func TestGossipRandomSchedule(t *testing.T) {
	opts := gossipOpts(9004)
	opts.DropRate = 0.01
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunRandomSchedule(40); err != nil {
		t.Fatal(err)
	}
	if c.Checker().VoteCount() == 0 {
		t.Fatal("checker saw no votes — relay unwrapping in the trace tap is broken")
	}
}
