package chaos_test

import (
	"testing"
	"time"

	"gpbft/internal/chaos"
)

// snapshotOptions is the shared base: 4 nodes, fast eras so a ten-era
// outage is a short virtual-time run, a low fast-sync threshold so the
// rejoin gap qualifies, and snapshots retained two-deep.
func snapshotOptions(seed int64) chaos.Options {
	return chaos.Options{
		Nodes:             4,
		Seed:              seed,
		EnableEraSwitch:   true,
		Snapshots:         true,
		FastSyncThreshold: 8,
		EraPeriod:         2 * time.Second,
	}
}

// TestSnapshotRejoinSchedule is the restart-at-scale proof: a node is
// killed, the survivors grow ten more eras with compaction truncating
// their block logs, and the revenant must come back via a verified
// snapshot plus a short tail — bounded replay, sync mode "snapshot",
// no fork, and the cluster commits again afterwards.
func TestSnapshotRejoinSchedule(t *testing.T) {
	opts := snapshotOptions(101)
	opts.Compact = true
	c, err := chaos.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(50 * time.Millisecond)
	if err := c.RunSnapshotRejoinSchedule(10); err != nil {
		t.Fatalf("snapshot rejoin (seed 101): %v", err)
	}
}

// TestCorruptSnapshotSchedule bit-flips every snapshot in the victim's
// own store before restart: boot must skip them all without applying a
// byte, then recover from a peer snapshot that verifies.
func TestCorruptSnapshotSchedule(t *testing.T) {
	opts := snapshotOptions(103)
	opts.Compact = true
	c, err := chaos.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(50 * time.Millisecond)
	if err := c.RunCorruptSnapshotSchedule(10); err != nil {
		t.Fatalf("corrupt local snapshots (seed 103): %v", err)
	}
}

// TestLyingPeerSchedule makes every peer the victim could fetch from
// serve corrupted snapshot bytes. The victim must reject each one on
// verification and fall back to full block replay — ending converged
// in replay mode with zero snapshots installed.
func TestLyingPeerSchedule(t *testing.T) {
	opts := snapshotOptions(107)
	opts.SnapshotLiars = []int{0, 1, 2}
	c, err := chaos.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(50 * time.Millisecond)
	if err := c.RunLyingPeerSchedule(10); err != nil {
		t.Fatalf("lying peers (seed 107): %v", err)
	}
}
