package chaos

import (
	"testing"
	"time"
)

// floodOpts is the shared n=7 overload-armor configuration: batch
// blocks so sustained load drains, a per-identity rate limit the
// honest pace (one tx per 200ms step = 5 tx/s) fits under, and a
// bounded pool so a flood shows up as occupancy.
func floodOpts(seed int64) Options {
	return Options{
		Nodes:        7,
		Seed:         seed,
		StepInterval: 200 * time.Millisecond,
		BatchSize:    8,
		RateLimit:    8,
		MempoolCap:   32,
		FairShare:    8,
	}
}

// One attacker at 5× the honest per-identity rate: honest median
// commit latency must stay within 2× the unloaded baseline while the
// attacker's overflow is turned away at admission.
func TestFloodSingleAttacker(t *testing.T) {
	c, err := New(floodOpts(7001))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunFloodSchedule(1, 5, 25)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flood report: %+v", rep)
	if rep.RejectedRate == 0 {
		t.Fatal("attacker overflow was never rate-limited")
	}
	if rep.AttackerOffered < 5*25 {
		t.Fatalf("attacker offered only %d txs, want >= 5x honest per-identity load", rep.AttackerOffered)
	}
	if rep.FloodP50 > 2*rep.BaselineP50 {
		t.Fatalf("honest p50 degraded %v -> %v (> 2x baseline)", rep.BaselineP50, rep.FloodP50)
	}
	if rep.HonestCommitted < rep.HonestSubmitted*9/10 {
		t.Fatalf("honest service collapsed: %d/%d committed", rep.HonestCommitted, rep.HonestSubmitted)
	}
}

// A Sybil-style flood: several attacker identities together offering
// an order of magnitude over the honest aggregate. The armor must keep
// honest latency bounded and actively shed or evict attacker load, and
// the run must stay fork-free under the standard invariants.
func TestFloodManyAttackers(t *testing.T) {
	c, err := New(floodOpts(7002))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.RunFloodSchedule(6, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flood report: %+v", rep)
	if rep.RejectedRate == 0 {
		t.Fatal("attacker overflow was never rate-limited")
	}
	if rep.FloodP50 > 2*rep.BaselineP50 {
		t.Fatalf("honest p50 degraded %v -> %v (> 2x baseline)", rep.BaselineP50, rep.FloodP50)
	}
	if rep.HonestCommitted < rep.HonestSubmitted*9/10 {
		t.Fatalf("honest service collapsed: %d/%d committed", rep.HonestCommitted, rep.HonestSubmitted)
	}
	// With six flooders the pool takes real pressure: the shed
	// controller and/or the QoS eviction path must have engaged.
	if rep.Shed == 0 && rep.Evicted == 0 && rep.MaxShedLevel == 0 {
		t.Fatalf("no degradation response under a 6-attacker flood: %+v", rep)
	}
}

// Bursty attackers dump a whole cycle's traffic at once: the token
// bucket absorbs at most one burst and rejects the rest, and honest
// latency still holds.
func TestFloodRequiresRateLimit(t *testing.T) {
	c, err := New(Options{Nodes: 7, Seed: 7003, StepInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunFloodSchedule(1, 5, 5); err == nil {
		t.Fatal("flood schedule must refuse to run without RateLimit")
	}
}
