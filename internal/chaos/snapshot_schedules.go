package chaos

import (
	"fmt"
	"time"

	"gpbft/internal/ledger"
	"gpbft/internal/runtime"
	"gpbft/internal/types"
)

// Snapshot fault schedules: the restart-at-scale proofs. Each drives a
// kill → grow-many-eras → rejoin arc and asserts HOW the revenant
// recovered, not just that it did — via the engine's own sync counters
// (blocks replayed, snapshots installed/rejected, final mode).

// SyncStats returns node i's engine sync counters.
func (c *Cluster) SyncStats(i int) runtime.SyncStats { return c.engines[i].SyncStats() }

// Replayed returns how many blocks node i has replayed from its
// durable log across all boots.
func (c *Cluster) Replayed(i int) uint64 { return c.replayed[i] }

// maxEra returns the highest era any live node has reached.
func (c *Cluster) maxEra() uint64 {
	var max uint64
	for i, e := range c.engines {
		if !c.crashed[i] && e.Era() > max {
			max = e.Era()
		}
	}
	return max
}

// gatewayReport keeps a crashed endorser's identity qualified: its
// device keeps beaconing signed location reports through a live peer
// (the IoT device's radio outlives its consensus process). Without
// this, a long outage would either expel the node or — at the
// committee minimum — stall era switches entirely, and the schedule
// would be testing the election layer instead of the sync layer.
func (c *Cluster) gatewayReport(device int) {
	gw := c.liveSubmitter()
	if c.crashed[gw] {
		return
	}
	c.nonces[device]++
	tx := &types.Transaction{
		Type:  types.TxLocationReport,
		Nonce: c.nonces[device],
		Geo: types.GeoInfo{
			Location:  c.positions[device],
			Timestamp: c.epoch.Add(c.net.Now()),
		},
	}
	tx.Sign(c.keys[device])
	_ = c.nodes[gw].Submit(c.net.Now(), tx)
}

// growEras drives traffic (payload transactions plus the location
// reports that keep every identity qualified) until the live cluster
// has completed n more forced era switches.
func (c *Cluster) growEras(n int) error {
	period := c.opts.EraPeriod
	if period == 0 {
		period = ledger.DefaultEraPeriod
	}
	target := c.maxEra() + uint64(n)
	deadline := c.Now() + time.Duration(n+2)*3*period
	for c.maxEra() < target {
		if c.Now() > deadline {
			return fmt.Errorf("chaos: era growth stalled at %d (want %d)", c.maxEra(), target)
		}
		for i := range c.nodes {
			if c.crashed[i] {
				c.gatewayReport(i)
				continue
			}
			c.SubmitReport(i)
			c.Submit(i, []byte(fmt.Sprintf("grow-%d-%d", c.Now(), i)))
		}
		c.RunFor(250 * time.Millisecond)
	}
	return nil
}

// snapshotScheduleSetup validates options, warms the cluster through
// two eras (so every node retains a snapshot), kills the victim, and
// grows the chain by `eras` eras without it. It returns the victim
// index and the heights before and after the outage.
func (c *Cluster) snapshotScheduleSetup(eras int) (victim int, hBefore, hGrown uint64, err error) {
	if !c.opts.Snapshots || !c.opts.EnableEraSwitch {
		return 0, 0, 0, fmt.Errorf("chaos: snapshot schedules need Snapshots and EnableEraSwitch")
	}
	victim = c.opts.Nodes - 1
	if err := c.growEras(2); err != nil {
		return 0, 0, 0, err
	}
	if err := c.CheckInvariants(); err != nil {
		return 0, 0, 0, fmt.Errorf("after warm-up: %w", err)
	}
	c.Crash(victim)
	hBefore = c.Height(0)
	if err := c.growEras(eras); err != nil {
		return 0, 0, 0, err
	}
	hGrown = c.Height(0)
	if hGrown-hBefore < uint64(eras) {
		return 0, 0, 0, fmt.Errorf("chaos: outage growth too small: %d blocks over %d eras", hGrown-hBefore, eras)
	}
	return victim, hBefore, hGrown, nil
}

// rejoinAndSettle restarts the victim and runs until quiescence, then
// re-checks the safety invariants and that the revenant converged to
// the cluster head.
func (c *Cluster) rejoinAndSettle(victim int) error {
	if err := c.Restart(victim, false); err != nil {
		return err
	}
	c.RunUntilIdleFor(60 * time.Second)
	if err := c.CheckInvariants(); err != nil {
		return fmt.Errorf("after rejoin: %w", err)
	}
	if c.Height(victim) < c.Height(0) {
		return fmt.Errorf("chaos: victim stuck at height %d, cluster at %d (stats %+v)",
			c.Height(victim), c.Height(0), c.SyncStats(victim))
	}
	return nil
}

// proveLiveness commits one more transaction everywhere.
func (c *Cluster) proveLiveness(tag string) error {
	before := c.MinHeight()
	c.Submit(c.liveSubmitter(), []byte(tag))
	c.RunUntilIdleFor(30 * time.Second)
	if err := c.CheckInvariants(); err != nil {
		return fmt.Errorf("after liveness probe: %w", err)
	}
	for i := range c.nodes {
		if c.Height(i) <= before {
			return fmt.Errorf("liveness: node %d stuck at height %d", i, c.Height(i))
		}
	}
	return nil
}

// RunSnapshotRejoinSchedule is the headline restart-at-scale proof:
// SIGKILL one node, grow the chain by `eras` forced eras (with
// compaction, so peers cannot serve the dead node's gap as blocks),
// restart it, and assert it recovered via snapshot-then-tail — a
// verified snapshot installed, sync mode "snapshot", and total blocks
// replayed (boot replay + tailed blocks) a small fraction of the
// outage growth, i.e. O(state + tail) rather than O(history).
func (c *Cluster) RunSnapshotRejoinSchedule(eras int) error {
	victim, hBefore, hGrown, err := c.snapshotScheduleSetup(eras)
	if err != nil {
		return err
	}
	replayedBefore := c.replayed[victim]
	if err := c.rejoinAndSettle(victim); err != nil {
		return err
	}
	st := c.SyncStats(victim)
	if st.SnapshotsInstalled < 1 {
		return fmt.Errorf("chaos: expected a snapshot install, stats %+v", st)
	}
	if st.Mode != runtime.SyncModeSnapshot {
		return fmt.Errorf("chaos: expected snapshot sync mode, got %v (stats %+v)", st.Mode, st)
	}
	replayed := st.BlocksSynced + (c.replayed[victim] - replayedBefore)
	grown := hGrown - hBefore
	if replayed*2 >= grown {
		return fmt.Errorf("chaos: replay not bounded by the tail: %d blocks replayed vs %d grown", replayed, grown)
	}
	return c.proveLiveness("rejoin-probe")
}

// RunCorruptSnapshotSchedule proves local corruption cannot install
// partial state: every snapshot in the victim's own store is bit-
// flipped before restart. Boot must skip them all (its compacted block
// log no longer connects to genesis, so it boots empty), then recover
// entirely from a peer snapshot that passes verification — converging
// with no fork and no partial state.
func (c *Cluster) RunCorruptSnapshotSchedule(eras int) error {
	victim, _, _, err := c.snapshotScheduleSetup(eras)
	if err != nil {
		return err
	}
	c.slots[victim].snaps.CorruptAll()
	replayedBefore := c.replayed[victim]
	if err := c.rejoinAndSettle(victim); err != nil {
		return err
	}
	if got := c.replayed[victim] - replayedBefore; got != 0 {
		return fmt.Errorf("chaos: boot replayed %d blocks from a log below corrupt snapshots", got)
	}
	st := c.SyncStats(victim)
	if st.SnapshotsInstalled < 1 {
		return fmt.Errorf("chaos: expected remote snapshot recovery, stats %+v", st)
	}
	return c.proveLiveness("corrupt-local-probe")
}

// RunLyingPeerSchedule proves the fallback: every peer the victim can
// fetch a snapshot from serves corrupted bytes (Options.SnapshotLiars
// wraps them). The victim must reject each lie on verification and
// fall back to full block replay — requiring Options.Compact to be
// off so peers still hold the blocks — ending converged with sync
// mode "replay" and zero snapshots installed.
func (c *Cluster) RunLyingPeerSchedule(eras int) error {
	if c.opts.Compact {
		return fmt.Errorf("chaos: lying-peer schedule needs Compact off so block replay stays possible")
	}
	if len(c.opts.SnapshotLiars) == 0 {
		return fmt.Errorf("chaos: lying-peer schedule needs SnapshotLiars")
	}
	victim, _, _, err := c.snapshotScheduleSetup(eras)
	if err != nil {
		return err
	}
	if err := c.rejoinAndSettle(victim); err != nil {
		return err
	}
	st := c.SyncStats(victim)
	if st.SnapshotsInstalled != 0 {
		return fmt.Errorf("chaos: a lying peer's snapshot was installed, stats %+v", st)
	}
	if st.SnapshotsRejected < 1 {
		return fmt.Errorf("chaos: expected rejected snapshots, stats %+v", st)
	}
	if st.Mode != runtime.SyncModeReplay {
		return fmt.Errorf("chaos: expected replay fallback mode, got %v (stats %+v)", st.Mode, st)
	}
	if st.BlocksSynced == 0 {
		return fmt.Errorf("chaos: fallback replay synced no blocks, stats %+v", st)
	}
	return c.proveLiveness("lying-peer-probe")
}
