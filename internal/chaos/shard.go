package chaos

import (
	"fmt"
	"time"

	"gpbft"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
)

// ShardReport summarises a geo-shard chaos schedule: the cross-region
// transfer ledger and the hierarchy's progress under faults.
type ShardReport struct {
	// Transfers submitted vs applied at their destinations; the
	// schedule fails unless they match AND every recipient's balance
	// equals exactly the transferred amount (no double-credit).
	Transfers int
	Applied   int
	// Dupes counts committed duplicate applies (failover retries the
	// ledger absorbed as no-ops) summed over regions — expected to be
	// small but legal, never credited twice.
	Dupes uint64
	// AnchorHeight is the anchor committee's committed height at the
	// end; MinRegionHeight the lowest region head.
	AnchorHeight    uint64
	MinRegionHeight uint64
}

// shardTransfer pairs a scheduled cross-region transfer with the
// recipient identity whose final balance proves exactly-once delivery.
type shardTransfer struct {
	at        time.Duration
	source    int
	dest      int
	recipient gcrypto.Address
	amount    uint64
}

// RunShardSchedule drives the geo-sharded hierarchy through its two
// designed failure modes while cross-region transfers are in flight:
//
//   - a full region partition (the region's consensus nodes AND its
//     anchor delegate drop off the world) landing mid-transfer, then
//     healing;
//   - an anchor-delegate crash (fail-stop of another region's only
//     checkpoint emitter), then recovery with memory intact.
//
// The property under test is exactly-once transfer delivery end to
// end: after heal + recovery + drain, every submitted transfer is
// applied at its destination, no recipient is credited twice (each
// recipient's balance equals exactly its transfer amount), every
// region's nodes agree on their chains, the anchor replicas agree on
// theirs, and every anchored region root matches the region's actual
// history — the fork/height invariants at both layers.
func RunShardSchedule(seed int64) (*ShardReport, error) {
	const regions, nodesPerRegion = 4, 4
	o := gpbft.DefaultOptions(gpbft.GPBFT, nodesPerRegion)
	o.Seed = seed
	o.ShardRegions = regions
	o.AnchorPeriod = 200 * time.Millisecond
	o.BatchSize = 8
	o.DisableEraSwitch = true
	s, err := gpbft.NewShardCluster(o)
	if err != nil {
		return nil, err
	}

	// Background traffic in every region for the whole window.
	for k := 0; k < 40; k++ {
		at := time.Duration(k+1) * 50 * time.Millisecond
		s.SubmitNodeTx(at, k%regions, k%nodesPerRegion, []byte{0xc4, byte(k)}, 1)
	}

	// Transfers bracketing the fault window: the ring 0→1→2→3→0 before
	// any fault, then transfers in and out of the soon-to-be-isolated
	// region 1 and the delegate-crashed region 2 while the faults hold.
	var transfers []shardTransfer
	mk := func(at time.Duration, src, dst, idx int) {
		transfers = append(transfers, shardTransfer{
			at: at, source: src, dest: dst,
			recipient: gcrypto.DeterministicKeyPair(800_000 + idx).Address(),
			amount:    uint64(10 + idx),
		})
	}
	for i := 0; i < regions; i++ {
		mk(300*time.Millisecond, i, (i+1)%regions, i)
	}
	mk(700*time.Millisecond, 0, 1, 4)  // into the isolated region
	mk(800*time.Millisecond, 1, 3, 5)  // out of the isolated region
	mk(900*time.Millisecond, 2, 3, 6)  // out of the delegate-crashed region
	mk(1000*time.Millisecond, 3, 2, 7) // into the delegate-crashed region
	for _, tr := range transfers {
		if _, err := s.SubmitTransfer(tr.at, tr.source, 0, tr.dest, tr.recipient, tr.amount); err != nil {
			return nil, err
		}
	}

	// The fault window: isolate region 1 at 500ms, fail-stop region 2's
	// only delegate at 600ms, heal and recover at 1.5s/1.6s.
	net := s.Net()
	net.Schedule(500*time.Millisecond, func(consensus.Time) { s.IsolateRegion(1) })
	net.Schedule(600*time.Millisecond, func(consensus.Time) { s.CrashDelegate(s.DelegateOf(2)[0]) })
	net.Schedule(1500*time.Millisecond, func(consensus.Time) { s.HealRegion(1) })
	net.Schedule(1600*time.Millisecond, func(consensus.Time) { s.RecoverDelegate(s.DelegateOf(2)[0]) })

	// Pump long past the faults so every stalled checkpoint and apply
	// drains, then let the loop quiesce.
	drain := 30 * time.Second
	s.StartAnchors(drain)
	s.RunUntilIdle(drain + 5*time.Minute)

	rep := &ShardReport{
		Transfers:    s.TransfersSubmitted(),
		Applied:      s.TransfersApplied(),
		AnchorHeight: s.AnchorHeight(),
	}
	minH, err := s.VerifyAgreement()
	if err != nil {
		return nil, err
	}
	rep.MinRegionHeight = minH
	if rep.MinRegionHeight == 0 {
		return nil, fmt.Errorf("chaos: a region committed nothing")
	}
	if rep.AnchorHeight == 0 {
		return nil, fmt.Errorf("chaos: the anchor committee committed nothing")
	}
	if rep.Applied != rep.Transfers {
		return nil, fmt.Errorf("chaos: %d of %d cross-region transfers applied (lost receipt)", rep.Applied, rep.Transfers)
	}
	// Exactly-once, per recipient: the balance must equal the single
	// transferred amount — a double-apply would double it, a lost
	// receipt would zero it.
	for idx, tr := range transfers {
		chain := s.Region(tr.dest).Node(0).App.Chain()
		if bal := chain.Rewards().Balance(tr.recipient); bal != tr.amount {
			return nil, fmt.Errorf("chaos: transfer %d: recipient balance %d, want exactly %d", idx, bal, tr.amount)
		}
		if _, ok := chain.ReceiptApplied(gcrypto.Hash{}); ok {
			return nil, fmt.Errorf("chaos: zero receipt ID marked applied")
		}
	}
	for i := 0; i < s.Regions(); i++ {
		rep.Dupes += s.Region(i).Node(0).App.Chain().ReceiptDupes()
	}
	return rep, nil
}
