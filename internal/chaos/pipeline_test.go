package chaos_test

import (
	"testing"
	"time"

	"gpbft/internal/chaos"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// TestRandomScheduleWithParallelVerification re-runs a seeded
// crash/restart/partition schedule with the whole parallel
// verification stack explicitly enabled: a multi-worker batch
// verifier, the transaction signature cache and the envelope
// verification memo. The point is regression coverage for the
// throughput engine — concurrency in the verification layer must not
// change what the safety checkers see. Any fork or double-sign under
// this schedule fails the run with the seed in the message.
func TestRandomScheduleWithParallelVerification(t *testing.T) {
	// Force the parallel paths on even on a single-core runner, and
	// restore whatever the process-wide defaults were on exit so
	// sibling tests are unaffected.
	prevWorkers := gcrypto.SetBatchWorkers(4)
	prevCache := types.SetSigCache(true)
	prevMemo := consensus.SetVerifyMemo(true)
	defer func() {
		gcrypto.SetBatchWorkers(prevWorkers)
		types.SetSigCache(prevCache)
		consensus.SetVerifyMemo(prevMemo)
	}()

	c, err := chaos.New(chaos.Options{Nodes: 7, Seed: 1337, DropRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(50 * time.Millisecond)
	if err := c.RunRandomSchedule(40); err != nil {
		t.Fatalf("seed 1337 (parallel verification on): %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("seed 1337: safety invariant violated with parallel verification: %v", err)
	}
	if v := c.Checker().Violations(); len(v) > 0 {
		t.Fatalf("seed 1337: double-sign detected with parallel verification: %v", v)
	}
	if c.Checker().VoteCount() == 0 {
		t.Fatal("seed 1337: checker observed no votes — harness is not watching the trace")
	}
}

// TestPipelinedScheduleSurvivesMidWindowFaults runs the scripted
// pipelining schedule: a deep transaction burst keeps several sequence
// numbers in flight, then a crash and a partition land mid-window. The
// harness invariants — no fork, no durable-log gap (which is what a
// skipped or doubly-executed slot would leave), no committed-height
// regression, no double-sign — must hold at every checkpoint of the
// schedule, and the cluster must heal and commit again afterwards.
func TestPipelinedScheduleSurvivesMidWindowFaults(t *testing.T) {
	for _, seed := range []int64{5, 91} {
		c, err := chaos.New(chaos.Options{Nodes: 7, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		c.RunFor(50 * time.Millisecond)
		if err := c.RunPipelinedSchedule(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if c.Checker().VoteCount() == 0 {
			t.Fatalf("seed %d: checker observed no votes", seed)
		}
	}
}
