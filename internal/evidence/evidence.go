// Package evidence defines self-verifying proofs of endorser
// misbehavior. The paper's era switch "expels endorsers" that
// misbehave; this package supplies the artifact that makes expulsion a
// consensus decision rather than a local suspicion: a Record bundles
// the offender's own signed messages, so any replica — or any third
// party — can re-verify the accusation from the record alone, with no
// trust in whoever assembled it.
//
// Three offenses are provable today:
//
//   - DoubleSign: two envelopes signed by the same replica carrying
//     conflicting votes (different digests) for the same consensus slot
//     (kind, era, view, seq). The two signatures ARE the proof — a
//     correct replica's persist-before-send WAL makes this impossible
//     by accident, even across crashes.
//   - SybilSameCell: two transactions from distinct identities whose
//     geographic information resolves to the same CSC cell within a
//     configured window — the Sybil pattern Section IV-A1 rules out
//     ("different nodes cannot report the same geographic information
//     at the same time").
//   - LocationSpoof: a device's signed location claim contradicted by
//     a quorum of signed witness disputes for the claimed cell
//     (Section II-C supervision). This one is quorum-attested rather
//     than purely self-incriminating, so verification additionally
//     requires the witnesses to be credible (committee members).
//
// Records travel as TxEvidence transactions: gossiped like any client
// request, validated by every replica before a block carrying them can
// commit, and folded into the chain's dynamic blacklist on commit.
package evidence

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"gpbft/internal/codec"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// Type discriminates the provable offenses.
type Type uint8

// Offense types.
const (
	// DoubleSign proves equivocation: two conflicting signed votes for
	// one consensus slot. Proofs[0] and Proofs[1] are the encoded
	// envelopes, ordered lexicographically.
	DoubleSign Type = iota + 1
	// SybilSameCell proves two identities sharing one CSC cell at
	// overlapping times. Proofs are the two encoded transactions, in
	// offender order.
	SybilSameCell
	// LocationSpoof proves a location claim disputed by a witness
	// quorum. Proofs[0] is the subject's claim transaction; the rest
	// are TxWitness disputes from distinct witnesses, in witness order.
	LocationSpoof
)

// String names the offense.
func (t Type) String() string {
	switch t {
	case DoubleSign:
		return "double-sign"
	case SybilSameCell:
		return "sybil-same-cell"
	case LocationSpoof:
		return "location-spoof"
	default:
		return fmt.Sprintf("evidence(%d)", uint8(t))
	}
}

// Valid reports whether t is a known offense type.
func (t Type) Valid() bool { return t >= DoubleSign && t <= LocationSpoof }

// Decoding limits. An evidence record accuses at most two identities
// (the Sybil pair) and carries at most a claim plus a bounded witness
// set; anything larger is malformed by construction.
const (
	MaxOffenders = 2
	MaxProofs    = 33 // 1 claim + up to 32 witness disputes
)

// Record is one self-contained accusation. Everything needed to check
// it is inside Proofs; Kind and Offenders only say what the proofs are
// claimed to show, and Verify confirms they show exactly that.
type Record struct {
	Kind      Type
	Offenders []gcrypto.Address
	Proofs    [][]byte
}

// Errors returned by evidence decoding and verification.
var (
	ErrKind     = errors.New("evidence: unknown evidence type")
	ErrShape    = errors.New("evidence: record shape invalid for type")
	ErrProof    = errors.New("evidence: proofs do not establish the offense")
	ErrDisabled = errors.New("evidence: offense type not accepted by policy")
	errTag      = errors.New("evidence: bad record tag")
)

const recordTag = "gpbft/evidence/v1"

// MarshalCanonical implements codec.Marshaler.
func (rec *Record) MarshalCanonical(w *codec.Writer) {
	w.String(recordTag)
	w.Uint8(uint8(rec.Kind))
	w.Count(len(rec.Offenders))
	for i := range rec.Offenders {
		w.Raw(rec.Offenders[i][:])
	}
	w.Count(len(rec.Proofs))
	for _, p := range rec.Proofs {
		w.WriteBytes(p)
	}
}

// UnmarshalCanonical decodes a record, enforcing the size limits.
func (rec *Record) UnmarshalCanonical(r *codec.Reader) error {
	if tag := r.ReadString(); r.Err() == nil && tag != recordTag {
		return errTag
	}
	rec.Kind = Type(r.Uint8())
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	if n == 0 || n > MaxOffenders {
		return ErrShape
	}
	rec.Offenders = make([]gcrypto.Address, n)
	for i := 0; i < n; i++ {
		r.RawInto(rec.Offenders[i][:])
	}
	m := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	if m == 0 || m > MaxProofs {
		return ErrShape
	}
	rec.Proofs = make([][]byte, m)
	for i := 0; i < m; i++ {
		rec.Proofs[i] = r.ReadBytes()
	}
	return r.Err()
}

// Encode returns the canonical wire bytes of rec.
func Encode(rec *Record) []byte { return codec.Encode(rec) }

// Decode parses wire bytes into a record, requiring full consumption.
// It checks structure only; call Verify to check the proofs.
func Decode(b []byte) (*Record, error) {
	r := codec.NewReader(b)
	var rec Record
	if err := rec.UnmarshalCanonical(r); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &rec, nil
}

// ID is the record's digest over its canonical encoding. Constructors
// order proofs deterministically, so independent detectors of the same
// offense produce the same ID — which is what lets the chain dedupe
// the accusations of many honest replicas into one blacklist entry.
func (rec *Record) ID() gcrypto.Hash { return gcrypto.HashBytes(Encode(rec)) }

// VerifyContext carries the policy parameters verification depends on.
// They come from the genesis admittance policy, so every replica
// verifies with identical parameters and block validity stays
// deterministic.
type VerifyContext struct {
	// SybilWindow is the maximum timestamp gap between two same-cell
	// reports for them to count as simultaneous. Zero or negative
	// rejects all SybilSameCell records.
	SybilWindow time.Duration
	// MinWitnesses is the dispute quorum for LocationSpoof. Zero or
	// negative rejects all LocationSpoof records.
	MinWitnesses int
	// CredibleWitness gates who may contribute a dispute (typically:
	// current endorsers, so candidates cannot frame each other with
	// throwaway keys). Nil accepts any valid signer.
	CredibleWitness func(gcrypto.Address) bool
}

// Verify checks that the proofs establish the claimed offense by the
// claimed offenders. A nil error means the record is safe to act on:
// the offenders provably misbehaved.
func (rec *Record) Verify(ctx VerifyContext) error {
	switch rec.Kind {
	case DoubleSign:
		return rec.verifyDoubleSign()
	case SybilSameCell:
		return rec.verifySybil(ctx.SybilWindow)
	case LocationSpoof:
		return rec.verifySpoof(ctx)
	default:
		return ErrKind
	}
}

// voteFields is the common prefix every vote body shares: PrePrepare,
// Prepare and Commit all marshal Era, View, Seq, Digest first (see
// pbft/messages.go). Parsing just the prefix keeps this package free of
// a pbft dependency, which the pbft engine needs to import us.
type voteFields struct {
	Era, View, Seq uint64
	Digest         gcrypto.Hash
}

func parseVoteBody(body []byte) (voteFields, error) {
	var v voteFields
	r := codec.NewReader(body)
	v.Era = r.Uint64()
	v.View = r.Uint64()
	v.Seq = r.Uint64()
	r.RawInto(v.Digest[:])
	return v, r.Err()
}

func (rec *Record) verifyDoubleSign() error {
	if len(rec.Offenders) != 1 || len(rec.Proofs) != 2 {
		return ErrShape
	}
	if bytes.Equal(rec.Proofs[0], rec.Proofs[1]) {
		return fmt.Errorf("%w: proofs are the same message", ErrProof)
	}
	if bytes.Compare(rec.Proofs[0], rec.Proofs[1]) > 0 {
		return fmt.Errorf("%w: proofs not in canonical order", ErrShape)
	}
	envA, err := consensus.DecodeEnvelope(rec.Proofs[0])
	if err != nil {
		return fmt.Errorf("%w: %v", ErrProof, err)
	}
	envB, err := consensus.DecodeEnvelope(rec.Proofs[1])
	if err != nil {
		return fmt.Errorf("%w: %v", ErrProof, err)
	}
	if envA.From != rec.Offenders[0] || envB.From != rec.Offenders[0] {
		return fmt.Errorf("%w: envelopes not from the accused", ErrProof)
	}
	if envA.MsgKind != envB.MsgKind {
		return fmt.Errorf("%w: envelopes of different kinds", ErrProof)
	}
	switch envA.MsgKind {
	case consensus.KindPrePrepare, consensus.KindPrepare, consensus.KindCommit:
	default:
		return fmt.Errorf("%w: kind %v is not a vote", ErrProof, envA.MsgKind)
	}
	if err := envA.Verify(); err != nil {
		return fmt.Errorf("%w: %v", ErrProof, err)
	}
	if err := envB.Verify(); err != nil {
		return fmt.Errorf("%w: %v", ErrProof, err)
	}
	va, err := parseVoteBody(envA.Body)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrProof, err)
	}
	vb, err := parseVoteBody(envB.Body)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrProof, err)
	}
	if va.Era != vb.Era || va.View != vb.View || va.Seq != vb.Seq {
		return fmt.Errorf("%w: votes are for different slots", ErrProof)
	}
	if va.Digest == vb.Digest {
		return fmt.Errorf("%w: votes agree on the digest", ErrProof)
	}
	return nil
}

func (rec *Record) verifySybil(window time.Duration) error {
	if window <= 0 {
		return ErrDisabled
	}
	if len(rec.Offenders) != 2 || len(rec.Proofs) != 2 {
		return ErrShape
	}
	if bytes.Compare(rec.Offenders[0][:], rec.Offenders[1][:]) >= 0 {
		return fmt.Errorf("%w: offenders not distinct and sorted", ErrShape)
	}
	var cells [2]string
	var stamps [2]time.Time
	for i := 0; i < 2; i++ {
		tx, err := types.DecodeTx(rec.Proofs[i])
		if err != nil {
			return fmt.Errorf("%w: %v", ErrProof, err)
		}
		if err := tx.Verify(); err != nil {
			return fmt.Errorf("%w: %v", ErrProof, err)
		}
		if tx.Sender != rec.Offenders[i] {
			return fmt.Errorf("%w: proof %d not from offender %d", ErrProof, i, i)
		}
		csc, err := tx.Report().CSC()
		if err != nil {
			return fmt.Errorf("%w: %v", ErrProof, err)
		}
		cells[i] = csc.Geohash
		stamps[i] = tx.Geo.Timestamp
	}
	if cells[0] != cells[1] {
		return fmt.Errorf("%w: reports are for different cells", ErrProof)
	}
	gap := stamps[0].Sub(stamps[1])
	if gap < 0 {
		gap = -gap
	}
	if gap > window {
		return fmt.Errorf("%w: reports %v apart exceed the %v window", ErrProof, gap, window)
	}
	return nil
}

func (rec *Record) verifySpoof(ctx VerifyContext) error {
	if ctx.MinWitnesses <= 0 {
		return ErrDisabled
	}
	if len(rec.Offenders) != 1 {
		return ErrShape
	}
	if len(rec.Proofs) < 1+ctx.MinWitnesses {
		return fmt.Errorf("%w: %d disputes below the %d-witness quorum", ErrShape, len(rec.Proofs)-1, ctx.MinWitnesses)
	}
	subject := rec.Offenders[0]
	claim, err := types.DecodeTx(rec.Proofs[0])
	if err != nil {
		return fmt.Errorf("%w: %v", ErrProof, err)
	}
	if err := claim.Verify(); err != nil {
		return fmt.Errorf("%w: %v", ErrProof, err)
	}
	if claim.Sender != subject {
		return fmt.Errorf("%w: claim not signed by the accused", ErrProof)
	}
	csc, err := claim.Report().CSC()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrProof, err)
	}
	seen := make(map[gcrypto.Address]bool, len(rec.Proofs)-1)
	var prev gcrypto.Address
	for i, raw := range rec.Proofs[1:] {
		wtx, err := types.DecodeTx(raw)
		if err != nil {
			return fmt.Errorf("%w: witness %d: %v", ErrProof, i, err)
		}
		if wtx.Type != types.TxWitness {
			return fmt.Errorf("%w: witness %d is not a witness transaction", ErrProof, i)
		}
		if err := wtx.Verify(); err != nil {
			return fmt.Errorf("%w: witness %d: %v", ErrProof, i, err)
		}
		if wtx.Sender == subject {
			return fmt.Errorf("%w: witness %d is the accused", ErrProof, i)
		}
		if i > 0 && bytes.Compare(prev[:], wtx.Sender[:]) >= 0 {
			return fmt.Errorf("%w: witnesses not distinct and sorted", ErrShape)
		}
		prev = wtx.Sender
		st, err := types.DecodeWitnessStatement(wtx.Payload)
		if err != nil {
			return fmt.Errorf("%w: witness %d: %v", ErrProof, i, err)
		}
		if st.Subject != subject || st.Geohash != csc.Geohash || st.Seen {
			return fmt.Errorf("%w: witness %d does not dispute the claimed cell", ErrProof, i)
		}
		if ctx.CredibleWitness != nil && !ctx.CredibleWitness(wtx.Sender) {
			return fmt.Errorf("%w: witness %d is not credible", ErrProof, i)
		}
		seen[wtx.Sender] = true
	}
	if len(seen) < ctx.MinWitnesses {
		return fmt.Errorf("%w: only %d distinct witnesses", ErrProof, len(seen))
	}
	return nil
}

// NewDoubleSign assembles and self-checks a DoubleSign record from two
// conflicting vote envelopes. Proofs are ordered lexicographically so
// every detector of the same pair produces an identical record.
func NewDoubleSign(a, b *consensus.Envelope) (*Record, error) {
	if a == nil || b == nil {
		return nil, ErrShape
	}
	ea, eb := consensus.EncodeEnvelope(a), consensus.EncodeEnvelope(b)
	if bytes.Compare(ea, eb) > 0 {
		ea, eb = eb, ea
	}
	rec := &Record{
		Kind:      DoubleSign,
		Offenders: []gcrypto.Address{a.From},
		Proofs:    [][]byte{ea, eb},
	}
	if err := rec.verifyDoubleSign(); err != nil {
		return nil, err
	}
	return rec, nil
}

// NewSybilSameCell assembles and self-checks a SybilSameCell record
// from two committed transactions reporting one cell. Offenders are
// sorted by address for determinism.
func NewSybilSameCell(a, b *types.Transaction, window time.Duration) (*Record, error) {
	if a == nil || b == nil {
		return nil, ErrShape
	}
	if bytes.Compare(b.Sender[:], a.Sender[:]) < 0 {
		a, b = b, a
	}
	rec := &Record{
		Kind:      SybilSameCell,
		Offenders: []gcrypto.Address{a.Sender, b.Sender},
		Proofs:    [][]byte{types.EncodeTx(a), types.EncodeTx(b)},
	}
	if err := rec.verifySybil(window); err != nil {
		return nil, err
	}
	return rec, nil
}

// NewLocationSpoof assembles and self-checks a LocationSpoof record
// from the subject's claim and the disputing witness transactions.
// Witnesses are sorted by address for determinism.
func NewLocationSpoof(claim *types.Transaction, witnesses []*types.Transaction, ctx VerifyContext) (*Record, error) {
	if claim == nil {
		return nil, ErrShape
	}
	ws := append([]*types.Transaction(nil), witnesses...)
	sort.Slice(ws, func(i, j int) bool {
		return bytes.Compare(ws[i].Sender[:], ws[j].Sender[:]) < 0
	})
	rec := &Record{
		Kind:      LocationSpoof,
		Offenders: []gcrypto.Address{claim.Sender},
		Proofs:    make([][]byte, 0, 1+len(ws)),
	}
	rec.Proofs = append(rec.Proofs, types.EncodeTx(claim))
	for _, w := range ws {
		rec.Proofs = append(rec.Proofs, types.EncodeTx(w))
	}
	if err := rec.verifySpoof(ctx); err != nil {
		return nil, err
	}
	return rec, nil
}

// Describe renders a one-line human summary (for gpbft-inspect).
func (rec *Record) Describe() string {
	var who bytes.Buffer
	for i, a := range rec.Offenders {
		if i > 0 {
			who.WriteString("+")
		}
		who.WriteString(a.Short())
	}
	detail := ""
	switch rec.Kind {
	case DoubleSign:
		if env, err := consensus.DecodeEnvelope(rec.Proofs[0]); err == nil {
			if v, err := parseVoteBody(env.Body); err == nil {
				detail = fmt.Sprintf(" %v era=%d view=%d seq=%d", env.MsgKind, v.Era, v.View, v.Seq)
			}
		}
	case SybilSameCell:
		if tx, err := types.DecodeTx(rec.Proofs[0]); err == nil {
			if csc, err := tx.Report().CSC(); err == nil {
				detail = " cell=" + csc.Geohash
			}
		}
	case LocationSpoof:
		if tx, err := types.DecodeTx(rec.Proofs[0]); err == nil {
			if csc, err := tx.Report().CSC(); err == nil {
				detail = fmt.Sprintf(" cell=%s witnesses=%d", csc.Geohash, len(rec.Proofs)-1)
			}
		}
	}
	return fmt.Sprintf("%v by %s%s id=%s", rec.Kind, who.String(), detail, rec.ID().Short())
}
