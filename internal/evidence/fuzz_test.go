package evidence_test

import (
	"bytes"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/evidence"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/pbft"
	"gpbft/internal/types"
)

// FuzzDecodeEvidence feeds arbitrary bytes through Decode, Verify and
// re-encode. Evidence records arrive from the network inside
// transactions, so the decoder must never panic, and anything it
// accepts must round-trip canonically (otherwise two replicas could
// compute different IDs for one committed record).
func FuzzDecodeEvidence(f *testing.F) {
	kp := gcrypto.DeterministicKeyPair(1)
	a := consensus.Seal(kp, &pbft.Prepare{Era: 1, View: 0, Seq: 2, Digest: gcrypto.HashBytes([]byte("a"))})
	b := consensus.Seal(kp, &pbft.Prepare{Era: 1, View: 0, Seq: 2, Digest: gcrypto.HashBytes([]byte("b"))})
	if rec, err := evidence.NewDoubleSign(a, b); err == nil {
		f.Add(evidence.Encode(rec))
	}

	spot := geo.Point{Lng: 114.1712, Lat: 22.3015}
	ts := time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)
	mkReport := func(k *gcrypto.KeyPair) *types.Transaction {
		tx := &types.Transaction{
			Type:  types.TxLocationReport,
			Nonce: 1,
			Geo:   types.GeoInfo{Location: spot, Timestamp: ts},
		}
		tx.Sign(k)
		return tx
	}
	if rec, err := evidence.NewSybilSameCell(
		mkReport(gcrypto.DeterministicKeyPair(2)),
		mkReport(gcrypto.DeterministicKeyPair(3)),
		2*time.Second,
	); err == nil {
		f.Add(evidence.Encode(rec))
	}
	f.Add([]byte("gpbft/evidence/v1"))
	f.Add([]byte{0x11, 0x67, 0x70, 0x62, 0x66, 0x74})

	ctx := evidence.VerifyContext{
		SybilWindow:     2 * time.Second,
		MinWitnesses:    2,
		CredibleWitness: func(gcrypto.Address) bool { return true },
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := evidence.Decode(data)
		if err != nil {
			return
		}
		// Shape limits must hold for anything the decoder accepts.
		if len(rec.Offenders) == 0 || len(rec.Offenders) > evidence.MaxOffenders {
			t.Fatalf("decoded %d offenders outside [1,%d]", len(rec.Offenders), evidence.MaxOffenders)
		}
		if len(rec.Proofs) == 0 || len(rec.Proofs) > evidence.MaxProofs {
			t.Fatalf("decoded %d proofs outside [1,%d]", len(rec.Proofs), evidence.MaxProofs)
		}
		// Verification must be panic-free on adversarial input.
		_ = rec.Verify(ctx)
		_ = rec.Describe()
		// Canonical round-trip: re-encoding an accepted record must
		// reproduce the input bytes exactly.
		if again := evidence.Encode(rec); !bytes.Equal(again, data) {
			t.Fatalf("decode/encode not canonical:\n in:  %x\n out: %x", data, again)
		}
	})
}
