package evidence_test

import (
	"errors"
	"testing"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/evidence"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/pbft"
	"gpbft/internal/types"
)

var epoch = time.Date(2019, 8, 5, 0, 0, 0, 0, time.UTC)

func ctxAllowAll() evidence.VerifyContext {
	return evidence.VerifyContext{
		SybilWindow:  2 * time.Second,
		MinWitnesses: 2,
		CredibleWitness: func(gcrypto.Address) bool {
			return true
		},
	}
}

func conflictingPrepares(t *testing.T, kp *gcrypto.KeyPair) (*consensus.Envelope, *consensus.Envelope) {
	t.Helper()
	a := &pbft.Prepare{Era: 3, View: 1, Seq: 7, Digest: gcrypto.HashBytes([]byte("block-a"))}
	b := &pbft.Prepare{Era: 3, View: 1, Seq: 7, Digest: gcrypto.HashBytes([]byte("block-b"))}
	return consensus.Seal(kp, a), consensus.Seal(kp, b)
}

func reportTx(kp *gcrypto.KeyPair, nonce uint64, at geo.Point, ts time.Time) *types.Transaction {
	tx := &types.Transaction{
		Type:  types.TxLocationReport,
		Nonce: nonce,
		Geo:   types.GeoInfo{Location: at, Timestamp: ts},
	}
	tx.Sign(kp)
	return tx
}

func witnessTx(kp *gcrypto.KeyPair, nonce uint64, subject gcrypto.Address, cell string, seen bool, ts time.Time) *types.Transaction {
	tx := &types.Transaction{
		Type:  types.TxWitness,
		Nonce: nonce,
		Payload: types.EncodeWitnessStatement(&types.WitnessStatement{
			Subject: subject,
			Geohash: cell,
			Seen:    seen,
		}),
		Geo: types.GeoInfo{Location: geo.Point{Lng: 114.178, Lat: 22.305}, Timestamp: ts},
	}
	tx.Sign(kp)
	return tx
}

func TestDoubleSignRoundTripAndVerify(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	envA, envB := conflictingPrepares(t, kp)
	rec, err := evidence.NewDoubleSign(envA, envB)
	if err != nil {
		t.Fatalf("NewDoubleSign: %v", err)
	}
	if len(rec.Offenders) != 1 || rec.Offenders[0] != kp.Address() {
		t.Fatalf("offenders = %v, want [%s]", rec.Offenders, kp.Address().Short())
	}

	// Wire round-trip preserves the record and its ID.
	got, err := evidence.Decode(evidence.Encode(rec))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.ID() != rec.ID() {
		t.Fatal("round-trip changed the record ID")
	}
	if err := got.Verify(ctxAllowAll()); err != nil {
		t.Fatalf("Verify after round-trip: %v", err)
	}
	// DoubleSign needs no policy support: it must verify even with
	// everything else disabled.
	if err := got.Verify(evidence.VerifyContext{}); err != nil {
		t.Fatalf("Verify with zero context: %v", err)
	}

	// Argument order must not matter: same pair, same ID.
	rec2, err := evidence.NewDoubleSign(envB, envA)
	if err != nil {
		t.Fatalf("NewDoubleSign swapped: %v", err)
	}
	if rec2.ID() != rec.ID() {
		t.Fatal("detector order changed the record ID — dedup breaks")
	}
}

func TestDoubleSignRejectsNonOffenses(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	other := gcrypto.DeterministicKeyPair(2)

	// Two identical votes are not an offense.
	v := &pbft.Prepare{Era: 1, View: 0, Seq: 2, Digest: gcrypto.HashBytes([]byte("x"))}
	env := consensus.Seal(kp, v)
	if _, err := evidence.NewDoubleSign(env, env); err == nil {
		t.Fatal("accepted a single vote presented twice")
	}

	// Votes for different slots are not an offense.
	w := &pbft.Prepare{Era: 1, View: 0, Seq: 3, Digest: gcrypto.HashBytes([]byte("y"))}
	if _, err := evidence.NewDoubleSign(env, consensus.Seal(kp, w)); err == nil {
		t.Fatal("accepted votes for different sequence numbers")
	}

	// Forged accusation: offender field naming someone who did not sign.
	envA, envB := conflictingPrepares(t, kp)
	rec, err := evidence.NewDoubleSign(envA, envB)
	if err != nil {
		t.Fatal(err)
	}
	rec.Offenders[0] = other.Address()
	if err := rec.Verify(ctxAllowAll()); err == nil {
		t.Fatal("verified a record framing a replica that signed nothing")
	}

	// Tampered proof bytes must fail envelope verification.
	rec, _ = evidence.NewDoubleSign(envA, envB)
	rec.Proofs[1] = append([]byte(nil), rec.Proofs[1]...)
	rec.Proofs[1][len(rec.Proofs[1])-1] ^= 1
	if err := rec.Verify(ctxAllowAll()); err == nil {
		t.Fatal("verified a record with tampered proof bytes")
	}
}

func TestSybilSameCellVerify(t *testing.T) {
	kpA := gcrypto.DeterministicKeyPair(10)
	kpB := gcrypto.DeterministicKeyPair(11)
	spot := geo.Point{Lng: 114.1712, Lat: 22.3015}
	txA := reportTx(kpA, 1, spot, epoch)
	txB := reportTx(kpB, 1, spot, epoch.Add(500*time.Millisecond))

	rec, err := evidence.NewSybilSameCell(txA, txB, 2*time.Second)
	if err != nil {
		t.Fatalf("NewSybilSameCell: %v", err)
	}
	if err := rec.Verify(ctxAllowAll()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Order independence ⇒ identical ID.
	rec2, err := evidence.NewSybilSameCell(txB, txA, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.ID() != rec.ID() {
		t.Fatal("tx order changed the Sybil record ID")
	}

	// Policy with the window off must refuse the record.
	if err := rec.Verify(evidence.VerifyContext{}); !errors.Is(err, evidence.ErrDisabled) {
		t.Fatalf("window=0 verify = %v, want ErrDisabled", err)
	}

	// Reports outside the window are not simultaneous occupancy.
	txLate := reportTx(kpB, 2, spot, epoch.Add(time.Minute))
	if _, err := evidence.NewSybilSameCell(txA, txLate, 2*time.Second); err == nil {
		t.Fatal("accepted reports a minute apart as simultaneous")
	}

	// Different cells are not an offense.
	txFar := reportTx(kpB, 3, geo.Point{Lng: 114.179, Lat: 22.309}, epoch)
	if _, err := evidence.NewSybilSameCell(txA, txFar, 2*time.Second); err == nil {
		t.Fatal("accepted reports for different cells")
	}

	// One identity reporting twice is not a Sybil pair.
	if _, err := evidence.NewSybilSameCell(txA, reportTx(kpA, 2, spot, epoch), 2*time.Second); err == nil {
		t.Fatal("accepted a single identity as a pair")
	}
}

func TestLocationSpoofVerify(t *testing.T) {
	subject := gcrypto.DeterministicKeyPair(20)
	w1 := gcrypto.DeterministicKeyPair(21)
	w2 := gcrypto.DeterministicKeyPair(22)
	spot := geo.Point{Lng: 114.1712, Lat: 22.3015}
	claim := reportTx(subject, 1, spot, epoch)
	cell := geo.MustEncode(spot, geo.CSCPrecision)
	d1 := witnessTx(w1, 1, subject.Address(), cell, false, epoch.Add(time.Second))
	d2 := witnessTx(w2, 1, subject.Address(), cell, false, epoch.Add(time.Second))

	ctx := ctxAllowAll()
	rec, err := evidence.NewLocationSpoof(claim, []*types.Transaction{d1, d2}, ctx)
	if err != nil {
		t.Fatalf("NewLocationSpoof: %v", err)
	}
	if err := rec.Verify(ctx); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got, err := evidence.Decode(evidence.Encode(rec)); err != nil || got.ID() != rec.ID() {
		t.Fatalf("round-trip: err=%v", err)
	}

	// Witness order must not change the ID.
	rec2, err := evidence.NewLocationSpoof(claim, []*types.Transaction{d2, d1}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.ID() != rec.ID() {
		t.Fatal("witness order changed the spoof record ID")
	}

	// Non-credible witnesses must not be able to convict.
	strict := ctx
	strict.CredibleWitness = func(a gcrypto.Address) bool { return a == w1.Address() }
	if err := rec.Verify(strict); err == nil {
		t.Fatal("verified with a non-credible witness in the quorum")
	}

	// A confirming statement is not a dispute.
	conf := witnessTx(w2, 2, subject.Address(), cell, true, epoch.Add(time.Second))
	if _, err := evidence.NewLocationSpoof(claim, []*types.Transaction{d1, conf}, ctx); err == nil {
		t.Fatal("accepted a confirming statement as a dispute")
	}

	// Below-quorum disputes must not convict.
	if _, err := evidence.NewLocationSpoof(claim, []*types.Transaction{d1}, ctx); err == nil {
		t.Fatal("accepted a single dispute below the quorum")
	}

	// The accused disputing itself does not count.
	self := witnessTx(subject, 2, subject.Address(), cell, false, epoch.Add(time.Second))
	if _, err := evidence.NewLocationSpoof(claim, []*types.Transaction{d1, self}, ctx); err == nil {
		t.Fatal("accepted the accused as its own witness")
	}

	// MinWitnesses=0 policy refuses the kind entirely.
	if err := rec.Verify(evidence.VerifyContext{SybilWindow: time.Second}); !errors.Is(err, evidence.ErrDisabled) {
		t.Fatalf("MinWitnesses=0 verify = %v, want ErrDisabled", err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":   {},
		"junk":    []byte("not an evidence record"),
		"tag-only": func() []byte {
			kp := gcrypto.DeterministicKeyPair(1)
			a, b := conflictingPrepares(t, kp)
			rec, _ := evidence.NewDoubleSign(a, b)
			return evidence.Encode(rec)[:8]
		}(),
	}
	for name, b := range cases {
		if _, err := evidence.Decode(b); err == nil {
			t.Errorf("%s: Decode accepted malformed bytes", name)
		}
	}

	// Trailing garbage after a valid record must be rejected.
	kp := gcrypto.DeterministicKeyPair(1)
	a, b := conflictingPrepares(t, kp)
	rec, _ := evidence.NewDoubleSign(a, b)
	if _, err := evidence.Decode(append(evidence.Encode(rec), 0x00)); err == nil {
		t.Error("Decode accepted trailing garbage")
	}

	// Unknown kinds decode (forward-compat shape) but never verify.
	rec.Kind = evidence.Type(99)
	got, err := evidence.Decode(evidence.Encode(rec))
	if err != nil {
		t.Fatalf("unknown kind decode: %v", err)
	}
	if err := got.Verify(ctxAllowAll()); !errors.Is(err, evidence.ErrKind) {
		t.Fatalf("unknown kind verify = %v, want ErrKind", err)
	}
}

func TestDescribeNamesOffense(t *testing.T) {
	kp := gcrypto.DeterministicKeyPair(1)
	a, b := conflictingPrepares(t, kp)
	rec, _ := evidence.NewDoubleSign(a, b)
	s := rec.Describe()
	if s == "" {
		t.Fatal("empty description")
	}
	for _, want := range []string{"double-sign", "seq=7"} {
		if !contains(s, want) {
			t.Errorf("Describe() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
