package loadgen

import (
	"os"
	"testing"
	"time"
)

// TestTCPProfile is a profiling harness, not a correctness test: run
// with GPBFT_PROFILE=1 and -cpuprofile to see where a TCP load run
// spends its time.
func TestTCPProfile(t *testing.T) {
	if os.Getenv("GPBFT_PROFILE") == "" {
		t.Skip("set GPBFT_PROFILE=1 to run the profiling harness")
	}
	res, err := runTCP(Config{
		Mode:          "tcp",
		Committee:     22,
		Rate:          200,
		Duration:      3 * time.Second,
		BatchSize:     32,
		MempoolCap:    100000,
		MempoolShards: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tps=%.1f p50=%.1fms p99=%.1fms committed=%d", res.TPS, res.P50Ms, res.P99Ms, res.Committed)
}
