package loadgen

import (
	"path/filepath"
	"testing"
	"time"
)

func TestReportRoundtripAndCompare(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_tps.json")

	r, err := LoadReport(path, MetricTPS)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metric != MetricTPS || len(r.Entries) != 0 {
		t.Fatalf("bootstrap report: %+v", r)
	}
	r.Upsert(Entry{Name: "a", Value: 100})
	r.Upsert(Entry{Name: "b", Value: 50})
	r.Upsert(Entry{Name: "a", Value: 120}) // replaces
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path, MetricTPS)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 || got.Find("a").Value != 120 {
		t.Fatalf("roundtrip: %+v", got)
	}

	fresh := &Report{Metric: MetricTPS, Entries: []Entry{
		{Name: "a", Value: 95},  // within 20% of 120? 120*0.8=96 → 95 regresses
		{Name: "b", Value: 49},  // within 20% of 50
		{Name: "new", Value: 1}, // no baseline: ignored
	}}
	regs := Compare(got, fresh, 0.2)
	if len(regs) != 1 {
		t.Fatalf("want 1 regression, got %v", regs)
	}

	lat := &Report{Metric: MetricLatency, Entries: []Entry{{Name: "a", P99Ms: 100}}}
	freshLat := &Report{Metric: MetricLatency, Entries: []Entry{{Name: "a", P99Ms: 130}}}
	if regs := Compare(lat, freshLat, 0.2); len(regs) != 1 {
		t.Fatalf("latency regression not caught: %v", regs)
	}
	if regs := Compare(lat, freshLat, 0.5); len(regs) != 0 {
		t.Fatalf("latency within tolerance flagged: %v", regs)
	}
}

func TestRunSimSmall(t *testing.T) {
	res, err := Run("test-sim", Config{Mode: "sim", Committee: 4, Rate: 100, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 || res.TPS <= 0 {
		t.Fatalf("sim run: %+v", res)
	}
	if res.Name != "test-sim" || res.Mode != "sim" || res.Committee != 4 {
		t.Fatalf("metadata: %+v", res)
	}
}

// TestRunSimDeterministic: same config, same seed, same TPS — the
// property the CI bench gate relies on.
func TestRunSimDeterministic(t *testing.T) {
	cfg := Config{Mode: "sim", Committee: 4, Rate: 100, Duration: time.Second, Seed: 42}
	a, err := Run("det", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("det", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TPS != b.TPS || a.Committed != b.Committed || a.P99Ms != b.P99Ms {
		t.Fatalf("non-deterministic sim: %+v vs %+v", a, b)
	}
}

func TestRunTCPSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp load run in -short mode")
	}
	res, err := Run("test-tcp", Config{Mode: "tcp", Committee: 4, Rate: 50, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 || res.TPS <= 0 {
		t.Fatalf("tcp run: %+v", res)
	}
	if res.Offered > 0 && res.Committed > res.Offered {
		t.Fatalf("committed %d exceeds offered %d", res.Committed, res.Offered)
	}
}

// TestRunSerialKnobsRestored: Run must restore every global
// verification knob it flips for the serial ablation.
func TestRunSerialKnobsRestored(t *testing.T) {
	restore := engineMode(false, 0)
	restore()
	if _, err := Run("serial-sim", Config{Mode: "sim", Committee: 4, Rate: 50, Duration: time.Second, Serial: true}); err != nil {
		t.Fatal(err)
	}
	// After a serial run the parallel defaults must be back.
	res, err := Run("parallel-sim", Config{Mode: "sim", Committee: 4, Rate: 50, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Serial {
		t.Fatalf("parallel run marked serial: %+v", res)
	}
}
