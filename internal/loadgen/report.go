package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Report is one of the repo's checked-in benchmark trajectory files
// (BENCH_tps.json / BENCH_latency.json): named entries, merged by name
// across runs so different machines and modes accumulate side by side.
type Report struct {
	Metric  string  `json:"metric"`
	Entries []Entry `json:"entries"`
}

// Entry is one recorded measurement.
type Entry struct {
	Name      string  `json:"name"`
	Mode      string  `json:"mode"`
	Committee int     `json:"committee"`
	Serial    bool    `json:"serial"`
	Workers   int     `json:"workers"`
	Cores     int     `json:"cores"`
	Offered   int     `json:"offered"`
	Committed int     `json:"committed"`
	Value     float64 `json:"value,omitempty"`  // committed TPS (tps metric)
	P50Ms     float64 `json:"p50_ms,omitempty"` // latency metric
	P99Ms     float64 `json:"p99_ms,omitempty"` // latency metric
	// Attack-run extras (omitted for plain runs): flooder identities,
	// what they offered, and what the overload armor turned away.
	Attackers       int    `json:"attackers,omitempty"`
	AttackerOffered int    `json:"attacker_offered,omitempty"`
	Rejected        uint64 `json:"rejected,omitempty"`
	Shed            uint64 `json:"shed,omitempty"`
	EvictedShed     uint64 `json:"evicted_shed,omitempty"`
	When            string `json:"when,omitempty"`
}

// Metric names for the two trajectory files.
const (
	MetricTPS     = "committed_tps"
	MetricLatency = "commit_latency_ms"
)

// TPSEntry projects a result into the TPS trajectory.
func (r Result) TPSEntry() Entry {
	e := Entry{
		Name: r.Name, Mode: r.Mode, Committee: r.Committee, Serial: r.Serial,
		Workers: r.Workers, Cores: r.Cores, Offered: r.Offered, Committed: r.Committed,
		Value: round2(r.TPS), When: time.Now().UTC().Format(time.RFC3339),
	}
	r.attackExtras(&e)
	return e
}

// LatencyEntry projects a result into the latency trajectory.
func (r Result) LatencyEntry() Entry {
	e := Entry{
		Name: r.Name, Mode: r.Mode, Committee: r.Committee, Serial: r.Serial,
		Workers: r.Workers, Cores: r.Cores, Offered: r.Offered, Committed: r.Committed,
		P50Ms: round2(r.P50Ms), P99Ms: round2(r.P99Ms), When: time.Now().UTC().Format(time.RFC3339),
	}
	r.attackExtras(&e)
	return e
}

func (r Result) attackExtras(e *Entry) {
	e.Attackers = r.Attackers
	e.AttackerOffered = r.AttackerOffered
	e.Rejected = r.Rejected
	e.Shed = r.Shed
	e.EvictedShed = r.EvictedShed
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

// LoadReport reads a trajectory file; a missing file yields an empty
// report with the given metric, so first runs bootstrap cleanly.
func LoadReport(path, metric string) (*Report, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Report{Metric: metric}, nil
	}
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	if r.Metric == "" {
		r.Metric = metric
	}
	return &r, nil
}

// Upsert replaces the entry with the same name, or appends.
func (r *Report) Upsert(e Entry) {
	for i := range r.Entries {
		if r.Entries[i].Name == e.Name {
			r.Entries[i] = e
			return
		}
	}
	r.Entries = append(r.Entries, e)
}

// Find returns the named entry, or nil.
func (r *Report) Find(name string) *Entry {
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			return &r.Entries[i]
		}
	}
	return nil
}

// Save writes the report with stable ordering (sorted by name) so
// checked-in files diff cleanly.
func (r *Report) Save(path string) error {
	sort.Slice(r.Entries, func(i, j int) bool { return r.Entries[i].Name < r.Entries[j].Name })
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Compare checks fresh entries against a recorded baseline with a
// relative tolerance, returning one message per regression. Only
// entries present in both reports are compared — a fresh entry with no
// baseline is new coverage, not a regression. TPS regresses downward;
// latency (p50 and p99) regresses upward.
func Compare(baseline, fresh *Report, tolerance float64) []string {
	var regressions []string
	for _, f := range fresh.Entries {
		b := baseline.Find(f.Name)
		if b == nil {
			continue
		}
		switch baseline.Metric {
		case MetricTPS:
			if b.Value > 0 && f.Value < b.Value*(1-tolerance) {
				regressions = append(regressions,
					fmt.Sprintf("%s: committed TPS %.2f is below baseline %.2f by more than %.0f%%",
						f.Name, f.Value, b.Value, tolerance*100))
			}
		case MetricLatency:
			if b.P50Ms > 0 && f.P50Ms > b.P50Ms*(1+tolerance) {
				regressions = append(regressions,
					fmt.Sprintf("%s: p50 latency %.2fms exceeds baseline %.2fms by more than %.0f%%",
						f.Name, f.P50Ms, b.P50Ms, tolerance*100))
			}
			if b.P99Ms > 0 && f.P99Ms > b.P99Ms*(1+tolerance) {
				regressions = append(regressions,
					fmt.Sprintf("%s: p99 latency %.2fms exceeds baseline %.2fms by more than %.0f%%",
						f.Name, f.P99Ms, b.P99Ms, tolerance*100))
			}
		}
	}
	return regressions
}
