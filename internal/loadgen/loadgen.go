// Package loadgen drives a G-PBFT cluster — the deterministic simnet
// or a real in-process TCP deployment — at a fixed offered load and
// measures committed throughput and commit latency. It is the engine
// behind cmd/gpbft-bench and the source of the repo's recorded perf
// trajectory (BENCH_tps.json / BENCH_latency.json).
package loadgen

import (
	"fmt"
	"runtime"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/transport"
	"gpbft/internal/types"
)

// Config describes one load run.
type Config struct {
	// Mode selects the cluster substrate: "sim" (deterministic
	// discrete-event simulator, virtual time) or "tcp" (in-process TCP
	// cluster, wall-clock time).
	Mode string
	// Committee is the endorser committee size (= node count here; the
	// bench exercises the consensus hot path, not candidate gossip).
	Committee int
	// Rate is the offered load in transactions per second.
	Rate int
	// Duration is the load window (virtual in sim mode, wall in tcp).
	Duration time.Duration
	// BatchSize caps transactions per block (0 = 32).
	BatchSize int
	// MempoolShards / MempoolCap configure each node's pool (0 = defaults).
	MempoolShards int
	MempoolCap    int
	// Workers overrides the verification pool width for the run
	// (0 = GOMAXPROCS). Ignored when Serial is set.
	Workers int
	// MaxInFlight is the consensus pipelining depth handed to the
	// engines (0 = engine default; 1 = the serial one-slot ablation).
	MaxInFlight int
	// Serial selects the ablation baseline: serial verification, no
	// signature/envelope memoization, no pipelined pre-verification —
	// the seed's behaviour.
	Serial bool
	// Seed drives deterministic choices (sim mode scheduling, keys).
	Seed int64

	// --- attack load (sim mode only) ---
	// Attackers spawns this many dedicated flooder identities alongside
	// the honest load; each offers AttackFactor times one honest
	// node's share of Rate, pinned to one entry node. Attack traffic
	// never starts the latency clock, so P50/P99/TPS stay honest-only.
	Attackers int
	// AttackFactor is each attacker's rate multiple over a single
	// honest submitter's share (0 = 5).
	AttackFactor int
	// RateLimit enables the per-identity admission armor and QoS lanes
	// on every node (tx/s per identity; 0 = off). An attack run with
	// RateLimit 0 measures the unarmored baseline under flood.
	RateLimit float64

	// --- geo-sharding (sim mode only) ---
	// Regions > 0 selects the geo-sharded hierarchy: that many region
	// committees of Committee nodes each run in parallel on one
	// simulator, anchored by a top-level checkpoint committee, and the
	// offered Rate is spread across the regions. 0 keeps the plain
	// single-cluster path bit-for-bit.
	Regions int
	// ShardPrefixLen is the geohash prefix length of the shard key
	// (0 = shard.DefaultPrefixLen).
	ShardPrefixLen int
	// AnchorPeriod is the region-checkpoint pump interval (0 = default).
	AnchorPeriod time.Duration
	// Transfers injects this many cross-region transfers spread over
	// the load window (needs Regions >= 2). The run fails its gate if
	// any transfer is not applied exactly once at its destination.
	Transfers int

	// Gossip replaces direct all-to-all broadcast with the epidemic
	// relay (fanout-f forwarding, round-scoped duplicate suppression).
	// Off keeps the exact pre-existing dissemination path.
	Gossip bool
	// GossipFanout overrides the relay fanout (0 = auto, ~log₂ n).
	GossipFanout int
	// GossipFlush overrides the relay flush interval (0 = default).
	// Shorter flushes cut per-hop dissemination latency at the cost of
	// more (smaller) relay frames.
	GossipFlush time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Mode == "" {
		out.Mode = "sim"
	}
	if out.Committee <= 0 {
		out.Committee = 4
	}
	if out.Rate <= 0 {
		out.Rate = 200
	}
	if out.Duration <= 0 {
		out.Duration = 5 * time.Second
	}
	if out.BatchSize <= 0 {
		out.BatchSize = 32
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Attackers > 0 && out.AttackFactor <= 0 {
		out.AttackFactor = 5
	}
	// The seed's scheduler was one-slot-at-a-time, so the full serial
	// ablation pins the pipelining depth to 1 alongside the
	// verification knobs (an explicit MaxInFlight still wins).
	if out.Serial && out.MaxInFlight == 0 {
		out.MaxInFlight = 1
	}
	return out
}

// Result is the outcome of one load run.
type Result struct {
	Name      string  `json:"name"`
	Mode      string  `json:"mode"`
	Committee int     `json:"committee"`
	Serial    bool    `json:"serial"`
	Workers   int     `json:"workers"`
	Cores     int     `json:"cores"`
	RateTPS   int     `json:"rate_tps"`
	Offered   int     `json:"offered"`
	Committed int     `json:"committed"`
	Elapsed   float64 `json:"elapsed_s"`
	TPS       float64 `json:"tps"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	// Attack-run extras (zero and omitted for plain runs): what the
	// flooders offered and how much of it the armor turned away.
	Attackers       int    `json:"attackers,omitempty"`
	AttackerOffered int    `json:"attacker_offered,omitempty"`
	Rejected        uint64 `json:"rejected,omitempty"`
	Shed            uint64 `json:"shed,omitempty"`
	EvictedShed     uint64 `json:"evicted_shed,omitempty"`
	// Shard-run extras (zero and omitted for single-cluster runs): the
	// region count, the anchor committee's committed height, and the
	// cross-region transfer ledger (submitted vs applied — the
	// exactly-once gate compares them).
	Regions          int    `json:"regions,omitempty"`
	AnchorHeight     uint64 `json:"anchor_height,omitempty"`
	Transfers        int    `json:"transfers,omitempty"`
	TransfersApplied int    `json:"transfers_applied,omitempty"`
	// Gossip-run extras (zero and omitted for direct-broadcast runs):
	// the relay counters summed over the committee and the message-
	// complexity measurement the sweep gate asserts against.
	Gossip          bool    `json:"gossip,omitempty"`
	RelayFanout     int     `json:"relay_fanout,omitempty"`
	RelayForwarded  uint64  `json:"relay_forwarded,omitempty"`
	RelaySuppressed uint64  `json:"relay_suppressed,omitempty"`
	RelayDropped    uint64  `json:"relay_dropped,omitempty"`
	Slots           uint64  `json:"slots,omitempty"`
	FramesPerSlot   float64 `json:"frames_per_node_per_slot,omitempty"`
}

func (r Result) String() string {
	mode := "parallel"
	if r.Serial {
		mode = "serial"
	}
	return fmt.Sprintf("%s [%s/%s c=%d cores=%d] offered=%d committed=%d tps=%.1f p50=%.1fms p99=%.1fms",
		r.Name, r.Mode, mode, r.Committee, r.Cores, r.Offered, r.Committed, r.TPS, r.P50Ms, r.P99Ms)
}

// engineMode flips every serial-vs-parallel knob as a set and returns
// a restore function. Serial reproduces the seed's hot path: one-at-a-
// time signature checks on the consensus goroutine with no caching.
func engineMode(serial bool, workers int) (restore func()) {
	if serial {
		workers = 1
	}
	prevW := gcrypto.SetBatchWorkers(workers)
	prevC := types.SetSigCache(!serial)
	prevM := consensus.SetVerifyMemo(!serial)
	prevP := transport.SetPreVerify(!serial)
	prevS := consensus.SetRequestSealCheck(serial)
	return func() {
		gcrypto.SetBatchWorkers(prevW)
		types.SetSigCache(prevC)
		consensus.SetVerifyMemo(prevM)
		transport.SetPreVerify(prevP)
		consensus.SetRequestSealCheck(prevS)
	}
}

// Run executes one load run per the config.
func Run(name string, cfg Config) (Result, error) {
	c := cfg.withDefaults()
	restore := engineMode(c.Serial, c.Workers)
	defer restore()
	// Capture the run's effective parallelism while the engine-mode
	// window is active: BatchWorkers resolves the 0 = GOMAXPROCS default
	// to what the verification pool will actually use, and GOMAXPROCS is
	// what the scheduler grants (not the machine's nominal NumCPU) — so
	// A/B entries in the bench files are distinguishable.
	effWorkers := gcrypto.BatchWorkers()
	effCores := runtime.GOMAXPROCS(0)

	var (
		res Result
		err error
	)
	switch c.Mode {
	case "sim":
		if c.Regions > 0 {
			res, err = runShardSim(c)
		} else {
			res, err = runSim(c)
		}
	case "tcp":
		res, err = runTCP(c)
	default:
		return Result{}, fmt.Errorf("loadgen: unknown mode %q", c.Mode)
	}
	if err != nil {
		return Result{}, err
	}
	res.Name = name
	res.Mode = c.Mode
	res.Committee = c.Committee
	res.Serial = c.Serial
	res.Cores = effCores
	res.Workers = effWorkers
	res.RateTPS = c.Rate
	return res, nil
}
