package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/core"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/runtime"
	"gpbft/internal/stats"
	"gpbft/internal/transport"
	"gpbft/internal/types"
)

// latencyRecorder tracks per-transaction wall-clock commit latency.
// Submissions come from the load goroutine, commit observations from
// node 0's runner loop.
type latencyRecorder struct {
	mu         sync.Mutex
	submits    map[gcrypto.Hash]time.Time
	latencies  []float64 // milliseconds
	committed  int
	lastCommit time.Time
}

func (r *latencyRecorder) submit(id gcrypto.Hash, at time.Time) {
	r.mu.Lock()
	r.submits[id] = at
	r.mu.Unlock()
}

func (r *latencyRecorder) observe(b *types.Block, at time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Count only offered transactions, each exactly once (a block can
	// be observed again through the sync path; the submits map
	// arbitrates first-commit).
	for i := range b.Txs {
		if sub, ok := r.submits[b.Txs[i].ID()]; ok {
			delete(r.submits, b.Txs[i].ID())
			r.latencies = append(r.latencies, float64(at.Sub(sub))/float64(time.Millisecond))
			r.committed++
			r.lastCommit = at
		}
	}
}

func (r *latencyRecorder) snapshot() (committed int, last time.Time, lat []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.committed, r.lastCommit, append([]float64(nil), r.latencies...)
}

// runTCP builds an in-process TCP cluster — every endorser a real
// runtime.Node behind its own transport endpoint on 127.0.0.1 — and
// offers load at the configured rate, measuring wall-clock committed
// TPS and commit latency. This is the mode where the serial-vs-
// parallel verification knobs show up as real time.
func runTCP(c Config) (Result, error) {
	n := c.Committee
	epoch := time.Now()
	site := geo.Point{Lng: 114.17, Lat: 22.30}

	keys := make([]*gcrypto.KeyPair, n)
	g := &ledger.Genesis{ChainID: "gpbft-bench", Timestamp: epoch, Policy: ledger.DefaultPolicy()}
	for i := 0; i < n; i++ {
		keys[i] = gcrypto.DeterministicKeyPair(i)
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: keys[i].Address(),
			PubKey:  keys[i].Public(),
			Geohash: geo.MustEncode(site, geo.CSCPrecision),
		})
	}
	if err := g.Validate(); err != nil {
		return Result{}, err
	}

	rec := &latencyRecorder{submits: make(map[gcrypto.Hash]time.Time)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	tcps := make([]*transport.TCP, n)
	runners := make([]*transport.Runner, n)
	chains := make([]*ledger.Chain, n)
	nodes := make([]*runtime.Node, n)
	var wg sync.WaitGroup
	defer func() {
		cancel()
		for _, t := range tcps {
			if t != nil {
				t.Close()
			}
		}
		wg.Wait()
	}()

	for i := 0; i < n; i++ {
		chain, err := ledger.NewChain(g)
		if err != nil {
			return Result{}, err
		}
		chains[i] = chain
		pool := runtime.NewMempoolShards(c.MempoolCap, c.MempoolShards)
		app := runtime.NewApp(chain, pool, keys[i].Address(), epoch, c.BatchSize)
		// Deep offered backlogs pack fuller blocks instead of more rounds.
		// The one-slot ablation keeps the seed's fixed batch: it measures
		// the old scheduler, not adaptive sizing.
		if c.MaxInFlight != 1 {
			app.SetMaxBatch(4 * c.BatchSize)
		}
		eng, err := core.New(core.Config{
			Chain:              chain,
			Key:                keys[i],
			App:                app,
			Timers:             consensus.NewTimerAllocator(),
			Epoch:              epoch,
			CheckpointInterval: 16,
			ViewChangeTimeout:  20 * time.Second,
			MaxInFlight:        c.MaxInFlight,
			ProposerPolicy:     core.ProposerAddress,
			DisableEraSwitch:   true,
		})
		if err != nil {
			return Result{}, err
		}
		node := &runtime.Node{ID: keys[i].Address(), Key: keys[i], App: app, Engine: eng}
		if c.Gossip {
			peers := make([]gcrypto.Address, n)
			for k := range keys {
				peers[k] = keys[k].Address()
			}
			node.Relay = consensus.NewRelay(consensus.RelayConfig{
				Self:   keys[i].Address(),
				Peers:  peers,
				Fanout: c.GossipFanout,
				Seed:   c.Seed ^ int64(uint64(i+1)*0x9e3779b97f4a7c15),
			})
		}
		nodes[i] = node
		if i == 0 {
			node.OnCommit = func(_ consensus.Time, b *types.Block) {
				rec.observe(b, time.Now())
			}
		}
		tcp, err := transport.New(transport.Config{Listen: "127.0.0.1:0", Self: keys[i].Address(), Key: keys[i]})
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: node %d listen: %w", i, err)
		}
		tcps[i] = tcp
		runners[i] = transport.NewRunner(node, tcp)
	}
	// Full-mesh address book, then start every event loop.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				tcps[i].AddPeer(transport.Peer{Addr: keys[j].Address(), HostPort: tcps[j].ListenAddr()})
			}
		}
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(r *transport.Runner) {
			defer wg.Done()
			r.Run(ctx)
		}(runners[i])
	}

	// Warm the mesh before the measured window: connections dial lazily
	// on first send, so without a preamble the n² dial-and-hello burst
	// and the first slow consensus round land inside the measurement.
	// The warmup transactions use distinct client keys and are not
	// recorded; the window opens once they have committed.
	for w := 0; w < 8; w++ {
		wtx := &types.Transaction{
			Type:    types.TxNormal,
			Nonce:   1,
			Payload: []byte{0xFF, byte(w)},
			Fee:     1,
			Geo:     types.GeoInfo{Location: geo.Point{Lng: site.Lng - 1 - float64(w), Lat: site.Lat}, Timestamp: epoch},
		}
		wtx.Sign(gcrypto.DeterministicKeyPair(5000 + w))
		_ = runners[w%n].Submit(wtx)
	}
	warmDeadline := time.Now().Add(3 * time.Second)
	for chains[0].Head().Header.Height == 0 && time.Now().Before(warmDeadline) {
		time.Sleep(10 * time.Millisecond)
	}

	// Pre-generate the whole offered load so signing cost stays out of
	// the measured window. Each sender claims its own geographic cell:
	// n identities all reporting one cell would trip the Sybil same-cell
	// detector and spend the measured window minting and re-verifying
	// evidence records — an accountability workload, not the commit hot
	// path this bench measures (chaos covers that pipeline).
	total := int(float64(c.Rate) * c.Duration.Seconds())
	txs := make([]*types.Transaction, total)
	for k := 0; k < total; k++ {
		at := geo.Point{Lng: site.Lng + float64(k%n), Lat: site.Lat}
		tx := &types.Transaction{
			Type:    types.TxNormal,
			Nonce:   uint64(k/n + 1),
			Payload: []byte{byte(k), byte(k >> 8), byte(k >> 16)},
			Fee:     1,
			Geo:     types.GeoInfo{Location: at, Timestamp: epoch.Add(time.Duration(k) * time.Millisecond)},
		}
		tx.Sign(keys[k%n])
		txs[k] = tx
	}

	// Offer load at the configured rate, round-robin across nodes.
	start := time.Now()
	interval := c.Duration / time.Duration(total)
	for k := 0; k < total; k++ {
		if target := start.Add(time.Duration(k) * interval); time.Until(target) > 0 {
			time.Sleep(time.Until(target))
		}
		rec.submit(txs[k].ID(), time.Now())
		_ = runners[k%n].Submit(txs[k])
	}

	// Drain: stop when everything offered has committed, or commits
	// stall, or the hard cap expires.
	hardCap := time.Now().Add(3*c.Duration + time.Minute)
	lastSeen, lastProgress := 0, time.Now()
	for {
		committed, _, _ := rec.snapshot()
		if committed >= total {
			break
		}
		if committed > lastSeen {
			lastSeen, lastProgress = committed, time.Now()
		}
		if time.Since(lastProgress) > 15*time.Second || time.Now().After(hardCap) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	committed, last, lat := rec.snapshot()
	if committed == 0 {
		return Result{}, fmt.Errorf("loadgen: tcp run committed nothing (offered %d)", total)
	}
	elapsed := last.Sub(start).Seconds()
	if elapsed <= 0 {
		elapsed = time.Since(start).Seconds()
	}
	res := Result{
		Offered:   total,
		Committed: committed,
		Elapsed:   elapsed,
		TPS:       float64(committed) / elapsed,
		P50Ms:     stats.Quantile(lat, 0.50),
		P99Ms:     stats.Quantile(lat, 0.99),
	}
	if c.Gossip {
		fillRelayResult(&res, n, chains[0].Head().Header.Height, func(i int) (consensus.RelayStats, int) {
			return nodes[i].Counters().Relay, nodes[i].Relay.Fanout()
		})
	}
	return res, nil
}
