package loadgen

import (
	"fmt"
	"time"

	"gpbft"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// fillRelayResult sums per-node relay counters into the result and
// derives the per-node frames-per-slot figure the sweep gate checks.
func fillRelayResult(res *Result, committee int, slots uint64, nodeStats func(i int) (consensus.RelayStats, int)) {
	res.Gossip = true
	res.Slots = slots
	for i := 0; i < committee; i++ {
		st, fanout := nodeStats(i)
		res.RelayForwarded += st.ForwardedFrames
		res.RelaySuppressed += st.Suppressed
		res.RelayDropped += st.Dropped
		if fanout > res.RelayFanout {
			res.RelayFanout = fanout
		}
	}
	if slots > 0 {
		res.FramesPerSlot = float64(res.RelayForwarded) / float64(committee) / float64(slots)
	}
}

// runShardSim drives the geo-sharded hierarchy: Regions committees of
// Committee nodes each, in parallel on one simulator, the offered rate
// spread across them round-robin, plus optional cross-region transfers
// riding the receipt-based two-phase path. TPS is measured over the
// window from first submission to last tracked commit — the anchor
// pump keeps ticking (cheaply) long after the workload drains, so the
// raw event-loop end time would understate throughput.
func runShardSim(c Config) (Result, error) {
	r := c.Regions
	o := gpbft.DefaultOptions(gpbft.GPBFT, c.Committee)
	o.Seed = c.Seed
	o.BatchSize = c.BatchSize
	o.MempoolShards = c.MempoolShards
	o.MempoolCap = c.MempoolCap
	o.MaxInFlight = c.MaxInFlight
	o.RateLimit = c.RateLimit
	o.ShardRegions = r
	o.ShardPrefixLen = c.ShardPrefixLen
	o.AnchorPeriod = c.AnchorPeriod
	if c.Committee > o.MaxEndorsers {
		o.MaxEndorsers = c.Committee
	}
	o.DisableEraSwitch = true
	s, err := gpbft.NewShardCluster(o)
	if err != nil {
		return Result{}, err
	}

	// The same total offered load as an unsharded run, spread evenly:
	// tx k enters region k%r through one of its nodes round-robin.
	total := int(float64(c.Rate) * c.Duration.Seconds())
	interval := c.Duration / time.Duration(total)
	start := 10 * time.Millisecond
	for k := 0; k < total; k++ {
		at := start + time.Duration(k)*interval
		s.SubmitNodeTx(at, k%r, (k/r)%c.Committee, []byte{byte(k), byte(k >> 8), byte(k >> 16)}, 1)
	}
	if c.Transfers > 0 && r > 1 {
		tInterval := c.Duration / time.Duration(c.Transfers)
		for k := 0; k < c.Transfers; k++ {
			at := start + time.Duration(k)*tInterval
			recipient := gcrypto.DeterministicKeyPair(700_000 + k).Address()
			if _, err := s.SubmitTransfer(at, k%r, k%c.Committee, (k+1)%r, recipient, uint64(k+1)); err != nil {
				return Result{}, err
			}
		}
	}
	// Keep the anchor pump alive well past the load window so every
	// receipt is anchored and applied before the loop quiesces.
	drain := c.Duration + 20*time.Second
	s.StartAnchors(drain)
	s.RunUntilIdle(drain + 5*time.Minute)

	m := s.Metrics()
	committed := m.CommittedCount()
	if committed == 0 {
		return Result{}, fmt.Errorf("loadgen: shard run committed nothing (offered %d)", total)
	}
	if _, err := s.VerifyAgreement(); err != nil {
		return Result{}, fmt.Errorf("loadgen: shard run lost agreement: %w", err)
	}
	elapsed := (time.Duration(m.LastCommitAt()) - start).Seconds()
	res := Result{
		Offered:          total,
		Committed:        committed,
		Elapsed:          elapsed,
		TPS:              float64(committed) / elapsed,
		P50Ms:            float64(m.Quantile(0.50)) / float64(time.Millisecond),
		P99Ms:            float64(m.Quantile(0.99)) / float64(time.Millisecond),
		Regions:          r,
		AnchorHeight:     s.AnchorHeight(),
		Transfers:        s.TransfersSubmitted(),
		TransfersApplied: s.TransfersApplied(),
	}
	return res, nil
}

// runSim drives a simulated G-PBFT cluster at the offered rate in
// virtual time. Results are fully deterministic for a given config and
// seed, which is what makes the CI bench gate stable: virtual-time TPS
// captures protocol and batching behaviour (blocks per round trip,
// mempool admission), independent of the runner's real CPU.
func runSim(c Config) (Result, error) {
	o := gpbft.DefaultOptions(gpbft.GPBFT, c.Committee)
	o.Seed = c.Seed
	o.BatchSize = c.BatchSize
	o.MempoolShards = c.MempoolShards
	o.MempoolCap = c.MempoolCap
	o.MaxInFlight = c.MaxInFlight
	o.RateLimit = c.RateLimit
	o.Gossip = c.Gossip
	o.GossipFanout = c.GossipFanout
	o.GossipFlush = c.GossipFlush
	// Sweep committees can exceed the default endorser cap; a silently
	// truncated committee would bench a smaller cluster than advertised.
	if c.Committee > o.MaxEndorsers {
		o.MaxEndorsers = c.Committee
	}
	// Freeze the committee: the bench measures the commit hot path, not
	// era churn (chaos and harness experiments cover that).
	o.DisableEraSwitch = true
	cl, err := gpbft.NewCluster(o)
	if err != nil {
		return Result{}, err
	}

	// Offered load: Rate tx/s for Duration, round-robin over nodes.
	total := int(float64(c.Rate) * c.Duration.Seconds())
	interval := c.Duration / time.Duration(total)
	start := 10 * time.Millisecond
	for k := 0; k < total; k++ {
		at := start + time.Duration(k)*interval
		cl.SubmitNodeTx(at, k%c.Committee, []byte{byte(k), byte(k >> 8), byte(k >> 16)}, 1)
	}
	// Attack load rides alongside: each flooder identity offers
	// AttackFactor times one honest node's share of Rate, pinned to a
	// single entry node, without touching the latency clock.
	attackOffered := 0
	for a := 0; a < c.Attackers; a++ {
		kp := gcrypto.DeterministicKeyPair(30000 + a)
		entry := a % c.Committee
		perAttacker := int(float64(c.Rate) / float64(c.Committee) * float64(c.AttackFactor) * c.Duration.Seconds())
		if perAttacker < 1 {
			perAttacker = 1
		}
		aInterval := c.Duration / time.Duration(perAttacker)
		for k := 0; k < perAttacker; k++ {
			at := start + time.Duration(k)*aInterval
			tx := &types.Transaction{
				Type:    types.TxNormal,
				Nonce:   uint64(k + 1),
				Payload: []byte{0xf1, byte(a), byte(k), byte(k >> 8)},
				Fee:     1,
				Geo: types.GeoInfo{
					Location:  cl.Position(entry),
					Timestamp: o.Epoch.Add(at),
				},
			}
			tx.Sign(kp)
			cl.SubmitAttackTx(at, entry, tx)
			attackOffered++
		}
	}
	cl.RunUntilIdle(c.Duration + 5*time.Minute)

	m := cl.Metrics()
	committed := m.CommittedCount()
	if committed == 0 {
		return Result{}, fmt.Errorf("loadgen: sim run committed nothing (offered %d)", total)
	}
	elapsed := (cl.Now() - start).Seconds()
	res := Result{
		Offered:   total,
		Committed: committed,
		Elapsed:   elapsed,
		TPS:       float64(committed) / elapsed,
		P50Ms:     float64(m.Quantile(0.50)) / float64(time.Millisecond),
		P99Ms:     float64(m.Quantile(0.99)) / float64(time.Millisecond),
	}
	if c.Attackers > 0 {
		res.Attackers = c.Attackers
		res.AttackerOffered = attackOffered
		for i := 0; i < cl.NodeCount(); i++ {
			cs := cl.NodeCounters(i)
			res.Rejected += cs.Admission.RejectedRate
			res.Shed += cs.Admission.Shed
			res.EvictedShed += cl.Node(i).App.Pool().Stats().EvictedShed
		}
	}
	if c.Gossip {
		fillRelayResult(&res, c.Committee, cl.MaxHeight(), func(i int) (consensus.RelayStats, int) {
			return cl.NodeCounters(i).Relay, cl.Node(i).Relay.Fanout()
		})
	}
	return res, nil
}
