package loadgen

import (
	"fmt"
	"time"

	"gpbft"
	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/types"
)

// fillRelayResult sums per-node relay counters into the result and
// derives the per-node frames-per-slot figure the sweep gate checks.
func fillRelayResult(res *Result, committee int, slots uint64, nodeStats func(i int) (consensus.RelayStats, int)) {
	res.Gossip = true
	res.Slots = slots
	for i := 0; i < committee; i++ {
		st, fanout := nodeStats(i)
		res.RelayForwarded += st.ForwardedFrames
		res.RelaySuppressed += st.Suppressed
		res.RelayDropped += st.Dropped
		if fanout > res.RelayFanout {
			res.RelayFanout = fanout
		}
	}
	if slots > 0 {
		res.FramesPerSlot = float64(res.RelayForwarded) / float64(committee) / float64(slots)
	}
}

// runSim drives a simulated G-PBFT cluster at the offered rate in
// virtual time. Results are fully deterministic for a given config and
// seed, which is what makes the CI bench gate stable: virtual-time TPS
// captures protocol and batching behaviour (blocks per round trip,
// mempool admission), independent of the runner's real CPU.
func runSim(c Config) (Result, error) {
	o := gpbft.DefaultOptions(gpbft.GPBFT, c.Committee)
	o.Seed = c.Seed
	o.BatchSize = c.BatchSize
	o.MempoolShards = c.MempoolShards
	o.MempoolCap = c.MempoolCap
	o.MaxInFlight = c.MaxInFlight
	o.RateLimit = c.RateLimit
	o.Gossip = c.Gossip
	o.GossipFanout = c.GossipFanout
	o.GossipFlush = c.GossipFlush
	// Sweep committees can exceed the default endorser cap; a silently
	// truncated committee would bench a smaller cluster than advertised.
	if c.Committee > o.MaxEndorsers {
		o.MaxEndorsers = c.Committee
	}
	// Freeze the committee: the bench measures the commit hot path, not
	// era churn (chaos and harness experiments cover that).
	o.DisableEraSwitch = true
	cl, err := gpbft.NewCluster(o)
	if err != nil {
		return Result{}, err
	}

	// Offered load: Rate tx/s for Duration, round-robin over nodes.
	total := int(float64(c.Rate) * c.Duration.Seconds())
	interval := c.Duration / time.Duration(total)
	start := 10 * time.Millisecond
	for k := 0; k < total; k++ {
		at := start + time.Duration(k)*interval
		cl.SubmitNodeTx(at, k%c.Committee, []byte{byte(k), byte(k >> 8), byte(k >> 16)}, 1)
	}
	// Attack load rides alongside: each flooder identity offers
	// AttackFactor times one honest node's share of Rate, pinned to a
	// single entry node, without touching the latency clock.
	attackOffered := 0
	for a := 0; a < c.Attackers; a++ {
		kp := gcrypto.DeterministicKeyPair(30000 + a)
		entry := a % c.Committee
		perAttacker := int(float64(c.Rate) / float64(c.Committee) * float64(c.AttackFactor) * c.Duration.Seconds())
		if perAttacker < 1 {
			perAttacker = 1
		}
		aInterval := c.Duration / time.Duration(perAttacker)
		for k := 0; k < perAttacker; k++ {
			at := start + time.Duration(k)*aInterval
			tx := &types.Transaction{
				Type:    types.TxNormal,
				Nonce:   uint64(k + 1),
				Payload: []byte{0xf1, byte(a), byte(k), byte(k >> 8)},
				Fee:     1,
				Geo: types.GeoInfo{
					Location:  cl.Position(entry),
					Timestamp: o.Epoch.Add(at),
				},
			}
			tx.Sign(kp)
			cl.SubmitAttackTx(at, entry, tx)
			attackOffered++
		}
	}
	cl.RunUntilIdle(c.Duration + 5*time.Minute)

	m := cl.Metrics()
	committed := m.CommittedCount()
	if committed == 0 {
		return Result{}, fmt.Errorf("loadgen: sim run committed nothing (offered %d)", total)
	}
	elapsed := (cl.Now() - start).Seconds()
	res := Result{
		Offered:   total,
		Committed: committed,
		Elapsed:   elapsed,
		TPS:       float64(committed) / elapsed,
		P50Ms:     float64(m.Quantile(0.50)) / float64(time.Millisecond),
		P99Ms:     float64(m.Quantile(0.99)) / float64(time.Millisecond),
	}
	if c.Attackers > 0 {
		res.Attackers = c.Attackers
		res.AttackerOffered = attackOffered
		for i := 0; i < cl.NodeCount(); i++ {
			cs := cl.NodeCounters(i)
			res.Rejected += cs.Admission.RejectedRate
			res.Shed += cs.Admission.Shed
			res.EvictedShed += cl.Node(i).App.Pool().Stats().EvictedShed
		}
	}
	if c.Gossip {
		fillRelayResult(&res, c.Committee, cl.MaxHeight(), func(i int) (consensus.RelayStats, int) {
			return cl.NodeCounters(i).Relay, cl.Node(i).Relay.Fanout()
		})
	}
	return res, nil
}
