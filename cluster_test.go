package gpbft_test

import (
	"fmt"
	"testing"
	"time"

	"gpbft"
	"gpbft/internal/types"
)

// fastOpts returns small-scale options with a quick network so tests
// run in milliseconds of wall time.
func fastOpts(p gpbft.Protocol, nodes int) gpbft.Options {
	o := gpbft.DefaultOptions(p, nodes)
	o.Network = gpbft.NetworkProfile{
		LatencyBase:   time.Millisecond,
		LatencyJitter: 500 * time.Microsecond,
		ProcTime:      100 * time.Microsecond,
		SendTime:      20 * time.Microsecond,
	}
	o.ViewChangeTimeout = 500 * time.Millisecond
	return o
}

func TestPBFTClusterCommits(t *testing.T) {
	c, err := gpbft.NewCluster(fastOpts(gpbft.PBFT, 4))
	if err != nil {
		t.Fatal(err)
	}
	tx := c.SubmitNodeTx(10*time.Millisecond, 0, []byte("reading"), 1)
	c.RunUntilIdle(10 * time.Second)
	h, err := c.VerifyAgreement()
	if err != nil {
		t.Fatal(err)
	}
	if h < 1 {
		t.Fatalf("height %d, want >= 1", h)
	}
	if c.Metrics().CommittedCount() != 1 {
		t.Fatalf("committed %d", c.Metrics().CommittedCount())
	}
	if c.Metrics().MeanLatency() <= 0 {
		t.Fatal("latency must be positive")
	}
	_ = tx
}

func TestGPBFTClusterCommitsWithClients(t *testing.T) {
	// 12 nodes, committee capped at 6: nodes 6..11 are candidates that
	// submit through the committee.
	o := fastOpts(gpbft.GPBFT, 12)
	o.MaxEndorsers = 6
	o.DisableEraSwitch = true
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	if c.CommitteeSize() != 6 {
		t.Fatalf("committee %d, want 6", c.CommitteeSize())
	}
	for i := 0; i < 12; i++ {
		c.SubmitNodeTx(time.Duration(10+i)*time.Millisecond, i, []byte("d"), 1)
	}
	c.RunUntilIdle(30 * time.Second)
	if got := c.Metrics().CommittedCount(); got != 12 {
		t.Fatalf("committed %d of 12", got)
	}
	// Candidate (observer) nodes do not commit blocks locally — only
	// the committee holds the ledger until they are elected. Agreement
	// is checked across committee members.
	for i := 0; i < 6; i++ {
		if c.Node(i).CommitErr != nil {
			t.Fatalf("node %d: %v", i, c.Node(i).CommitErr)
		}
		if c.Node(i).App.Chain().Height() < 1 {
			t.Fatalf("endorser %d has empty chain", i)
		}
	}
}

func TestGPBFTTrafficMuchLowerThanPBFT(t *testing.T) {
	run := func(p gpbft.Protocol) float64 {
		o := fastOpts(p, 20)
		o.MaxEndorsers = 5
		o.DisableEraSwitch = true
		c, err := gpbft.NewCluster(o)
		if err != nil {
			t.Fatal(err)
		}
		c.RunUntilIdle(time.Second) // drain startup
		c.Traffic().Reset()
		c.SubmitNodeTx(c.Now()+10*time.Millisecond, 0, []byte("x"), 1)
		c.RunUntilIdle(c.Now() + 20*time.Second)
		if c.Metrics().CommittedCount() != 1 {
			t.Fatalf("%v: tx not committed", p)
		}
		return c.Traffic().KB()
	}
	pbftKB := run(gpbft.PBFT)
	gpbftKB := run(gpbft.GPBFT)
	if gpbftKB >= pbftKB/2 {
		t.Fatalf("G-PBFT traffic %.1fKB not much lower than PBFT %.1fKB", gpbftKB, pbftKB)
	}
}

func TestGPBFTEraSwitchAdmitsCandidate(t *testing.T) {
	o := fastOpts(gpbft.GPBFT, 7)
	o.GenesisEndorsers = 6 // node 6 starts as a candidate
	o.MaxEndorsers = 10    // room for it to be elected
	o.MinEndorsers = 4
	o.EraPeriod = 2 * time.Second
	o.SwitchPeriod = 250 * time.Millisecond
	o.QualificationWindow = 1 * time.Second
	o.MinReports = 3
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	// Everyone reports periodically (endorsers must keep
	// re-authenticating; the candidate needs residency history).
	for i := 0; i < 7; i++ {
		c.ScheduleReports(i, 50*time.Millisecond, 300*time.Millisecond, 30)
	}
	c.RunUntilIdle(30 * time.Second)

	ce := c.CoreEngine(6)
	if !ce.IsEndorser() {
		t.Fatalf("candidate was not admitted: era=%d endorser=%v chainH=%d",
			ce.Era(), ce.IsEndorser(), c.Node(6).App.Chain().Height())
	}
	if ce.Era() == 0 {
		t.Fatal("era never advanced")
	}
	// The candidate synced the full chain and agrees with node 0.
	if _, err := c.VerifyAgreement(); err != nil {
		t.Fatal(err)
	}
	// And the chain's committee now includes it.
	if !c.Node(0).App.Chain().IsEndorser(c.Address(6)) {
		t.Fatal("chain committee does not include the new endorser")
	}
	if c.Metrics().EraSwitches() == 0 {
		t.Fatal("no era switch observed")
	}
}

func TestGPBFTEraSwitchExpelsSilentEndorser(t *testing.T) {
	// Endorser 5 never reports: geographic re-authentication must expel
	// it at the first era switch (insufficient reports).
	o := fastOpts(gpbft.GPBFT, 6)
	o.MaxEndorsers = 6
	o.MinEndorsers = 4
	o.EraPeriod = 2 * time.Second
	o.SwitchPeriod = 100 * time.Millisecond
	o.QualificationWindow = time.Second
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // node 5 stays silent
		c.ScheduleReports(i, 50*time.Millisecond, 300*time.Millisecond, 30)
	}
	c.RunUntilIdle(30 * time.Second)

	chain := c.Node(0).App.Chain()
	if chain.IsEndorser(c.Address(5)) {
		t.Fatal("silent endorser was not expelled")
	}
	if c.CoreEngine(5).IsEndorser() {
		t.Fatal("expelled endorser still believes it participates")
	}
	if got := len(chain.Endorsers()); got != 5 {
		t.Fatalf("committee size %d, want 5", got)
	}
	// The survivors keep committing transactions in the new era.
	before := chain.Height()
	c.SubmitNodeTx(c.Now()+10*time.Millisecond, 0, []byte("post-switch"), 1)
	c.RunUntilIdle(c.Now() + 10*time.Second)
	if chain.Height() <= before {
		t.Fatal("no commits after the era switch")
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() (uint64, int64, time.Duration) {
		o := fastOpts(gpbft.GPBFT, 8)
		o.MaxEndorsers = 6
		o.DisableEraSwitch = true
		o.Seed = 99
		c, err := gpbft.NewCluster(o)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			c.SubmitNodeTx(time.Duration(5+i*3)*time.Millisecond, i, []byte{byte(i)}, 1)
		}
		c.RunUntilIdle(20 * time.Second)
		return c.MaxHeight(), c.Traffic().Bytes(), c.Metrics().MeanLatency()
	}
	h1, b1, l1 := run()
	h2, b2, l2 := run()
	if h1 != h2 || b1 != b2 || l1 != l2 {
		t.Fatalf("non-deterministic: (%d,%d,%v) vs (%d,%d,%v)", h1, b1, l1, h2, b2, l2)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := gpbft.NewCluster(gpbft.Options{Nodes: 2}); err == nil {
		t.Fatal("2 nodes must fail")
	}
	o := gpbft.DefaultOptions(gpbft.PBFT, 4)
	o.MinEndorsers = 10
	o.MaxEndorsers = 5
	if _, err := gpbft.NewCluster(o); err == nil {
		t.Fatal("bad endorser bounds must fail")
	}
}

func TestProtocolString(t *testing.T) {
	if gpbft.PBFT.String() != "PBFT" || gpbft.GPBFT.String() != "G-PBFT" {
		t.Fatal("protocol names wrong")
	}
}

func TestMetricsQuantiles(t *testing.T) {
	o := fastOpts(gpbft.PBFT, 4)
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.SubmitNodeTx(time.Duration(10+i*10)*time.Millisecond, i%4, []byte(fmt.Sprintf("p%d", i)), 1)
	}
	c.RunUntilIdle(20 * time.Second)
	m := c.Metrics()
	if m.CommittedCount() != 10 {
		t.Fatalf("committed %d", m.CommittedCount())
	}
	if m.Quantile(0) > m.Quantile(0.5) || m.Quantile(0.5) > m.Quantile(1) {
		t.Fatal("quantiles must be monotone")
	}
	if m.MaxLatency() != m.Quantile(1) {
		t.Fatal("max must equal q1.0")
	}
	if m.PendingCount() != 0 {
		t.Fatalf("pending %d", m.PendingCount())
	}
	if m.BlocksObserved() == 0 || m.SubmittedCount() != 10 {
		t.Fatal("metrics accounting off")
	}
}

// Guard against accidental API breakage: the README quickstart compiles.
func TestQuickstartShape(t *testing.T) {
	o := gpbft.DefaultOptions(gpbft.GPBFT, 8)
	o.Network.ProcTime = 50 * time.Microsecond
	o.DisableEraSwitch = true
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	var tx *types.Transaction = c.SubmitNodeTx(time.Millisecond, 1, []byte("quickstart"), 2)
	c.RunUntilIdle(30 * time.Second)
	if c.Metrics().CommittedCount() != 1 {
		t.Fatal("quickstart tx did not commit")
	}
	_ = tx
}

func TestGPBFTSnapshotsAtEraBoundaries(t *testing.T) {
	o := fastOpts(gpbft.GPBFT, 4)
	o.EraPeriod = 2 * time.Second
	o.SwitchPeriod = 250 * time.Millisecond
	o.QualificationWindow = 1 * time.Second
	o.ForceEraSwitch = true // switch every era even with no delta
	o.Snapshots = true
	o.RetainSnapshots = 2
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.ScheduleReports(i, 50*time.Millisecond, 300*time.Millisecond, 60)
	}
	for i := 0; i < 30; i++ {
		c.SubmitNodeTx(time.Duration(100+200*i)*time.Millisecond, i%4, []byte(fmt.Sprintf("r%d", i)), 1)
	}
	c.RunUntilIdle(30 * time.Second)
	if _, err := c.VerifyAgreement(); err != nil {
		t.Fatal(err)
	}
	if c.CoreEngine(0).Era() == 0 {
		t.Fatal("era never advanced; snapshots untestable")
	}
	for i := 0; i < 4; i++ {
		n := c.SnapshotCount(i)
		if n == 0 {
			t.Fatalf("node %d produced no era snapshots", i)
		}
		if n > 2 {
			t.Fatalf("node %d retains %d snapshots, over the depth of 2", i, n)
		}
	}
	// No node fell behind far enough to need catch-up in this healthy
	// run; the stats surface must still be readable.
	if st := c.SyncStats(0); st.SnapshotsRejected != 0 {
		t.Fatalf("healthy run rejected snapshots: %+v", st)
	}
}
