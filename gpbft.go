// Package gpbft is the public API of this repository: a complete,
// from-scratch implementation of G-PBFT — the location-based, scalable
// consensus protocol for IoT-blockchain applications of Lao, Dai, Xiao
// and Guo (IPDPS 2020) — together with the classic PBFT baseline it is
// evaluated against, a blockchain substrate, a geographic/IoT workload
// model, and a deterministic discrete-event network simulator.
//
// The central entry point is Cluster: it assembles a simulated
// IoT-blockchain deployment (endorsers, candidate devices, clients)
// running either protocol, lets you inject transactions, and exposes
// per-transaction consensus latency and network-traffic metrics — the
// two quantities the paper's evaluation reports.
//
//	opts := gpbft.DefaultOptions(gpbft.GPBFT, 40)
//	c, err := gpbft.NewCluster(opts)
//	...
//	c.SubmitNodeTx(100*time.Millisecond, 0, []byte("temp=23.4"), 1)
//	c.RunUntilIdle(30 * time.Second)
//	fmt.Println(c.Metrics().MeanLatency(), c.Traffic().KB())
//
// Real deployments over TCP use cmd/gpbft-node and cmd/gpbft-client,
// which wire the same engines to the transport in internal/transport.
package gpbft

import (
	"time"
)

// Protocol selects the consensus protocol a cluster runs.
type Protocol int

const (
	// PBFT runs classic PBFT across ALL nodes (the paper's baseline).
	PBFT Protocol = iota
	// GPBFT runs the paper's protocol: a geographic endorser committee
	// (capped by policy) reaches consensus on behalf of all devices.
	GPBFT
)

// String names the protocol.
func (p Protocol) String() string {
	if p == PBFT {
		return "PBFT"
	}
	return "G-PBFT"
}

// NetworkProfile parameterizes the simulated network and node model.
type NetworkProfile struct {
	// LatencyBase/LatencyJitter model propagation delay.
	LatencyBase   time.Duration
	LatencyJitter time.Duration
	// BytesPerSec models link bandwidth (0 = unlimited).
	BytesPerSec float64
	// ProcTime is the per-received-message CPU cost: the paper models
	// "a node can receive and process s messages per second";
	// ProcTime = 1/s.
	ProcTime time.Duration
	// SendTime is the per-sent-message CPU cost.
	SendTime time.Duration
	// DropRate drops messages independently with this probability.
	DropRate float64
}

// LANProfile models the paper's testbed: server machines with two-core
// 2.2 GHz CPUs on a LAN. The processing rate (~670 msgs/s) is
// calibrated so PBFT consensus latency at 202 nodes lands in the
// paper's >250 s regime under the Figure 3 load.
func LANProfile() NetworkProfile {
	return NetworkProfile{
		LatencyBase:   400 * time.Microsecond,
		LatencyJitter: 200 * time.Microsecond,
		ProcTime:      1500 * time.Microsecond,
		SendTime:      150 * time.Microsecond,
	}
}
