// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus the ablations called out in DESIGN.md and
// micro-benchmarks of the hot substrates.
//
// Each figure benchmark executes a scaled-down instance of the
// corresponding experiment per iteration and reports the measured
// quantity via b.ReportMetric (latency in s, traffic in KB, ratios).
// Paper-scale numbers are produced by `go run ./cmd/gpbft-sim -full`.
package gpbft_test

import (
	"fmt"
	"testing"
	"time"

	"gpbft"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/harness"
	"gpbft/internal/ledger"
	"gpbft/internal/stats"
)

// benchConfig is a scaled-down experiment configuration that keeps a
// single benchmark iteration under roughly a second.
func benchConfig() harness.Config {
	c := harness.Quick()
	c.Runs = 1
	c.LoadWindow = 3 * time.Second
	c.PerNodeInterval = time.Second
	c.ReportEvery = time.Second
	c.EraPeriod = 2 * time.Second
	c.MaxEndorsers = 8
	c.Profile = gpbft.NetworkProfile{
		LatencyBase:   500 * time.Microsecond,
		LatencyJitter: 200 * time.Microsecond,
		ProcTime:      300 * time.Microsecond,
		SendTime:      30 * time.Microsecond,
	}
	c.DrainCap = 2 * time.Minute
	return c
}

// --- Figure 3a: PBFT consensus latency under load ---

func BenchmarkFig3aPBFTLatency(b *testing.B) {
	c := benchConfig()
	var mean float64
	for i := 0; i < b.N; i++ {
		lats, err := c.MeasureLatencyRun(gpbft.PBFT, 24, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		mean = stats.Mean(lats)
	}
	b.ReportMetric(mean, "latency-s")
}

// --- Figure 3b: G-PBFT consensus latency with a capped committee ---

func BenchmarkFig3bGPBFTLatency(b *testing.B) {
	c := benchConfig()
	var mean float64
	for i := 0; i < b.N; i++ {
		lats, err := c.MeasureLatencyRun(gpbft.GPBFT, 24, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		mean = stats.Mean(lats)
	}
	b.ReportMetric(mean, "latency-s")
}

// --- Figure 4: latency comparison (speedup of G-PBFT over PBFT) ---

func BenchmarkFig4LatencyComparison(b *testing.B) {
	c := benchConfig()
	var speedup float64
	for i := 0; i < b.N; i++ {
		pl, err := c.MeasureLatencyRun(gpbft.PBFT, 24, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		gl, err := c.MeasureLatencyRun(gpbft.GPBFT, 24, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if g := stats.Mean(gl); g > 0 {
			speedup = stats.Mean(pl) / g
		}
	}
	b.ReportMetric(speedup, "speedup-x")
}

// --- Figure 5a: PBFT communication cost per transaction ---

func BenchmarkFig5aPBFTCommCost(b *testing.B) {
	c := benchConfig()
	var kb float64
	for i := 0; i < b.N; i++ {
		var err error
		kb, _, err = c.MeasureCommCost(gpbft.PBFT, 32, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(kb, "KB")
}

// --- Figure 5b: G-PBFT communication cost plateaus at the cap ---

func BenchmarkFig5bGPBFTCommCost(b *testing.B) {
	c := benchConfig()
	var kb float64
	for i := 0; i < b.N; i++ {
		var err error
		kb, _, err = c.MeasureCommCost(gpbft.GPBFT, 32, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(kb, "KB")
}

// --- Figure 6: communication-cost reduction ---

func BenchmarkFig6CommComparison(b *testing.B) {
	c := benchConfig()
	var reduction float64
	for i := 0; i < b.N; i++ {
		p, _, err := c.MeasureCommCost(gpbft.PBFT, 32, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		g, _, err := c.MeasureCommCost(gpbft.GPBFT, 32, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if p > 0 {
			reduction = 100 * (1 - g/p)
		}
	}
	b.ReportMetric(reduction, "reduction-%")
}

// --- Table III: the n-largest headline comparison ---

func BenchmarkTable3Headline(b *testing.B) {
	c := benchConfig()
	const n = 40
	var latRatio, costRatio float64
	for i := 0; i < b.N; i++ {
		pl, err := c.MeasureLatencyRun(gpbft.PBFT, n, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		gl, err := c.MeasureLatencyRun(gpbft.GPBFT, n, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		pk, _, err := c.MeasureCommCost(gpbft.PBFT, n, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		gk, _, err := c.MeasureCommCost(gpbft.GPBFT, n, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if p := stats.Mean(pl); p > 0 {
			latRatio = 100 * stats.Mean(gl) / p
		}
		if pk > 0 {
			costRatio = 100 * gk / pk
		}
	}
	b.ReportMetric(latRatio, "latency-ratio-%")
	b.ReportMetric(costRatio, "cost-ratio-%")
}

// --- Table II: election-table row throughput ---

func BenchmarkTable2ElectionTable(b *testing.B) {
	table := ledger.NewElectionTable()
	loc := geo.Point{Lng: 114.1795, Lat: 22.3050}
	epoch := time.Date(2019, 8, 5, 18, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := geo.Report{
			Location:  loc,
			Timestamp: epoch.Add(time.Duration(i) * time.Second),
			Address:   fmt.Sprintf("device-%d", i%64),
		}
		if _, err := table.Record(rep); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section IV: analytic model probe (unloaded single-tx commit) ---

func BenchmarkAnalyticModel(b *testing.B) {
	c := benchConfig()
	c.Sizes = []int{16}
	var rows int
	for i := 0; i < b.N; i++ {
		t, err := c.Model(discard{})
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationCommitteeCap sweeps MaxEndorsers: the paper's core
// trade-off between committee size and cost.
func BenchmarkAblationCommitteeCap(b *testing.B) {
	for _, cap := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("cap-%d", cap), func(b *testing.B) {
			c := benchConfig()
			c.MaxEndorsers = cap
			var kb float64
			for i := 0; i < b.N; i++ {
				var err error
				kb, _, err = c.MeasureCommCost(gpbft.GPBFT, 32, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(kb, "KB")
		})
	}
}

// BenchmarkAblationEraPeriod sweeps T: short eras pause the system
// often (switch periods), long eras react slowly.
func BenchmarkAblationEraPeriod(b *testing.B) {
	for _, T := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second} {
		b.Run(fmt.Sprintf("T-%v", T), func(b *testing.B) {
			c := benchConfig()
			c.EraPeriod = T
			var mean float64
			for i := 0; i < b.N; i++ {
				lats, err := c.MeasureLatencyRun(gpbft.GPBFT, 16, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				mean = stats.Mean(lats)
			}
			b.ReportMetric(mean, "latency-s")
		})
	}
}

// BenchmarkAblationProposerPolicy compares geographic-timer proposer
// bias against plain address rotation.
func BenchmarkAblationProposerPolicy(b *testing.B) {
	for _, geoTimer := range []bool{true, false} {
		name := "geo-timer"
		if !geoTimer {
			name = "address"
		}
		b.Run(name, func(b *testing.B) {
			c := benchConfig()
			var mean float64
			for i := 0; i < b.N; i++ {
				o := gpbft.DefaultOptions(gpbft.GPBFT, 16)
				o.Seed = int64(i + 1)
				o.Network = c.Profile
				o.MaxEndorsers = 8
				o.GeoTimerProposer = geoTimer
				o.DisableEraSwitch = true
				prev := gcrypto.SetVerification(false)
				cl, err := gpbft.NewCluster(o)
				if err != nil {
					gcrypto.SetVerification(prev)
					b.Fatal(err)
				}
				for k := 0; k < 16; k++ {
					cl.SubmitNodeTx(time.Duration(10+k*50)*time.Millisecond, k, []byte{byte(k)}, 1)
				}
				cl.RunUntilIdle(time.Minute)
				mean = cl.Metrics().MeanLatency().Seconds()
				gcrypto.SetVerification(prev)
			}
			b.ReportMetric(mean, "latency-s")
		})
	}
}

// BenchmarkAblationBatchSize sweeps transactions per block.
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			var mean, tps float64
			for i := 0; i < b.N; i++ {
				o := gpbft.DefaultOptions(gpbft.GPBFT, 16)
				o.Seed = int64(i + 1)
				o.Network = benchConfig().Profile
				o.MaxEndorsers = 8
				o.BatchSize = batch
				o.DisableEraSwitch = true
				prev := gcrypto.SetVerification(false)
				cl, err := gpbft.NewCluster(o)
				if err != nil {
					gcrypto.SetVerification(prev)
					b.Fatal(err)
				}
				for k := 0; k < 32; k++ {
					cl.SubmitNodeTx(time.Duration(10+k*20)*time.Millisecond, k%16, []byte{byte(k)}, 1)
				}
				cl.RunUntilIdle(time.Minute)
				mean = cl.Metrics().MeanLatency().Seconds()
				// Committed TPS over the virtual run, so batch-size
				// ablations are comparable with BENCH_tps.json entries.
				if elapsed := cl.Now().Seconds(); elapsed > 0 {
					tps = float64(cl.Metrics().CommittedCount()) / elapsed
				}
				gcrypto.SetVerification(prev)
			}
			b.ReportMetric(mean, "latency-s")
			b.ReportMetric(tps, "committed-tps")
		})
	}
}
