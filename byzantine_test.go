package gpbft_test

import (
	"testing"
	"time"

	"gpbft"
)

// TestEquivocatingPrimaryDeposed: an equivocating leader splits the
// committee between two conflicting proposals; no conflicting block
// may commit, a view change must depose it, and the honest majority
// must resume committing.
func TestEquivocatingPrimaryDeposed(t *testing.T) {
	o := fastOpts(gpbft.PBFT, 7)
	o.ViewChangeTimeout = 400 * time.Millisecond
	// We don't know which index leads view 0 (address order is
	// hash-derived), so make EVERY node an equivocator-when-leading
	// except... that would break everything. Instead: find the leader
	// by building an honest throwaway cluster first.
	probe, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	leaderIdx := -1
	probe.RunUntilIdle(time.Millisecond)
	for i := 0; i < 7; i++ {
		if probe.PBFTEngine(i).IsPrimary() {
			leaderIdx = i
			break
		}
	}
	if leaderIdx < 0 {
		t.Fatal("no leader found")
	}

	o.Byzantine = map[int]gpbft.Fault{leaderIdx: gpbft.FaultEquivocate}
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		c.SubmitNodeTx(time.Duration(10+k*150)*time.Millisecond, (leaderIdx+1+k)%7, []byte{byte(k)}, 1)
	}
	c.RunUntilIdle(2 * time.Minute)

	// SAFETY: all nodes agree (the equivocator's own chain included —
	// its inner engine is honest, only its wire behaviour lies).
	if _, err := c.VerifyAgreement(); err != nil {
		t.Fatalf("safety violated: %v", err)
	}
	// LIVENESS: the honest majority eventually committed the load.
	if got := c.Metrics().CommittedCount(); got < 8 {
		t.Fatalf("committed %d of 8 under an equivocating leader", got)
	}
	// The equivocator was deposed: some honest node moved past view 0.
	moved := false
	for i := 0; i < 7; i++ {
		if i != leaderIdx && c.PBFTEngine(i).View() > 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("equivocating leader was never deposed")
	}
}

// TestVoteWithholdersTolerated: f vote-withholding endorsers cannot
// stall a committee of 3f+1.
func TestVoteWithholdersTolerated(t *testing.T) {
	o := fastOpts(gpbft.PBFT, 7) // f = 2
	o.Byzantine = map[int]gpbft.Fault{1: gpbft.FaultWithholdVotes, 2: gpbft.FaultWithholdVotes}
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		c.SubmitNodeTx(time.Duration(10+k*100)*time.Millisecond, k%7, []byte{byte(k)}, 1)
	}
	c.RunUntilIdle(time.Minute)
	if got := c.Metrics().CommittedCount(); got != 8 {
		t.Fatalf("committed %d of 8 with f vote withholders", got)
	}
	if _, err := c.VerifyAgreement(); err != nil {
		t.Fatal(err)
	}
}

// TestSilentEndorsersTolerated: f silent (joined-but-dead) members.
func TestSilentEndorsersTolerated(t *testing.T) {
	o := fastOpts(gpbft.PBFT, 7)
	o.ViewChangeTimeout = 400 * time.Millisecond
	o.Byzantine = map[int]gpbft.Fault{5: gpbft.FaultSilent, 6: gpbft.FaultSilent}
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		c.SubmitNodeTx(time.Duration(10+k*150)*time.Millisecond, k%5, []byte{byte(k)}, 1)
	}
	c.RunUntilIdle(2 * time.Minute)
	if got := c.Metrics().CommittedCount(); got != 6 {
		t.Fatalf("committed %d of 6 with f silent members", got)
	}
}

// TestGPBFTWithByzantineEndorser: the era layer also absorbs a
// Byzantine committee member.
func TestGPBFTWithByzantineEndorser(t *testing.T) {
	o := fastOpts(gpbft.GPBFT, 8)
	o.MaxEndorsers = 7
	o.DisableEraSwitch = true
	o.ViewChangeTimeout = 400 * time.Millisecond
	o.Byzantine = map[int]gpbft.Fault{3: gpbft.FaultWithholdVotes}
	c, err := gpbft.NewCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		c.SubmitNodeTx(time.Duration(10+k*150)*time.Millisecond, k%8, []byte{byte(k)}, 1)
	}
	c.RunUntilIdle(2 * time.Minute)
	if got := c.Metrics().CommittedCount(); got != 8 {
		t.Fatalf("committed %d of 8", got)
	}
}
