package gpbft

import (
	"errors"
	"fmt"
	"math"
	"time"

	"gpbft/internal/consensus"
	"gpbft/internal/gcrypto"
	"gpbft/internal/geo"
	"gpbft/internal/ledger"
	"gpbft/internal/pbft"
	"gpbft/internal/runtime"
	"gpbft/internal/shard"
	"gpbft/internal/simnet"
	"gpbft/internal/types"
)

// DefaultAnchorPeriod is the region-checkpoint emission interval when
// Options.AnchorPeriod is zero.
const DefaultAnchorPeriod = 500 * time.Millisecond

// anchorKeyBase keeps anchor-committee identities far away from any
// region node's deterministic key index.
const anchorKeyBase = 9_000_000

// regionKeyStride spaces each region's key indices so no two regions
// share a simnet address.
const regionKeyStride = 100_000

// DefaultEndorserEndowment funds each region committee member at
// genesis when Options.EndorserEndowment is zero. Transfer locks debit
// the sender — cross-region value is conserved, never minted — so
// sharded runs need senders holding more than fee dust.
const DefaultEndorserEndowment = 1 << 20

// ShardCluster is a geo-sharded hierarchical deployment: one full
// consensus instance (committee, mempool, chain) per geohash-prefix
// region, all sharing a single discrete-event simulator, plus a
// top-level anchor committee running plain PBFT over region-checkpoint
// transactions. Regions commit independently and in parallel;
// cross-region transfers take the receipt-based two-phase path — lock
// in the source region, apply in the destination only after the anchor
// has committed the source checkpoint covering the receipt.
//
// Each anchor-committee member is a delegate of one region, physically
// deployed inside it: isolating a region cuts its delegates off from
// the rest of the anchor committee too, and all of the harness's chain
// reads are delegate-local so nothing peeks across a partition.
type ShardCluster struct {
	opts     Options
	net      *simnet.Network
	metrics  *Metrics
	router   *shard.Router
	prefixes []string
	regions  []*Cluster

	anchorKeys    []*gcrypto.KeyPair
	anchorNodes   []*runtime.Node
	anchorEng     []*pbft.Engine
	anchorPos     []geo.Point
	anchorGenesis *ledger.Genesis
	anchorNonces  []uint64

	crashedRegion []map[int]bool // region -> node index -> crashed
	crashedAnchor map[int]bool   // anchor member index -> crashed
	isolated      map[int]bool   // region index -> isolated

	// applySubmitted tracks when each anchored receipt was last handed
	// to its destination region, so lost submissions (crashed entry
	// node, partition) are retried instead of spammed every tick.
	applySubmitted map[gcrypto.Hash]consensus.Time
	transfers      int
}

// NewShardCluster builds and starts a geo-sharded deployment.
// Options.Nodes is the per-region node count; Options.ShardRegions the
// region count (1..shard.MaxRegions; 1 reproduces a single-region
// cluster plus its anchor committee); Options.Region seeds the
// partition (its center cell plus geohash neighbours).
func NewShardCluster(opts Options) (*ShardCluster, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	r := opts.ShardRegions
	if r == 0 {
		r = 1
	}
	if r < 1 || r > shard.MaxRegions {
		return nil, fmt.Errorf("gpbft: ShardRegions %d out of range [1, %d]", r, shard.MaxRegions)
	}
	prefixLen := opts.ShardPrefixLen
	if prefixLen == 0 {
		prefixLen = shard.DefaultPrefixLen
	}
	prefixes, err := shard.Partition(opts.Region, prefixLen, r)
	if err != nil {
		return nil, err
	}
	if opts.EndorserEndowment == 0 {
		opts.EndorserEndowment = DefaultEndorserEndowment
	}
	router, err := shard.NewRouter(prefixes)
	if err != nil {
		return nil, err
	}

	s := &ShardCluster{
		opts:           opts,
		metrics:        NewMetrics(),
		router:         router,
		prefixes:       prefixes,
		crashedRegion:  make([]map[int]bool, r),
		crashedAnchor:  make(map[int]bool),
		isolated:       make(map[int]bool),
		applySubmitted: make(map[gcrypto.Hash]consensus.Time),
	}
	s.net = simnet.New(simnet.Config{
		Seed: opts.Seed,
		Latency: simnet.UniformLatency{
			Base:        opts.Network.LatencyBase,
			Jitter:      opts.Network.LatencyJitter,
			BytesPerSec: opts.Network.BytesPerSec,
		},
		ProcTime: opts.Network.ProcTime,
		SendTime: opts.Network.SendTime,
		DropRate: opts.Network.DropRate,
	})

	// One full consensus instance per region, sharing the event loop
	// and the latency recorder.
	s.regions = make([]*Cluster, r)
	for i := 0; i < r; i++ {
		ropts := opts
		ropts.ShardRegions = 0
		region, err := shard.RegionOf(prefixes[i])
		if err != nil {
			return nil, err
		}
		ropts.Region = region
		cl, err := newClusterOn(ropts, clusterSite{
			net:         s.net,
			metrics:     s.metrics,
			chainID:     fmt.Sprintf("gpbft-sim-%d-r-%s", opts.Seed, prefixes[i]),
			keyBase:     i * regionKeyStride,
			shardPrefix: prefixes[i],
		})
		if err != nil {
			return nil, err
		}
		s.regions[i] = cl
		s.crashedRegion[i] = make(map[int]bool)
	}

	if err := s.buildAnchor(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildAnchor assembles the top-level checkpoint committee: at least 4
// members (PBFT liveness), spread round-robin over the regions so each
// region has at least one delegate.
func (s *ShardCluster) buildAnchor() error {
	r := len(s.regions)
	members := r
	if members < 4 {
		members = 4
	}
	bound, err := shard.Bound(s.prefixes)
	if err != nil {
		return err
	}

	s.anchorKeys = make([]*gcrypto.KeyPair, members)
	s.anchorPos = make([]geo.Point, members)
	s.anchorNonces = make([]uint64, members)
	g := &ledger.Genesis{
		ChainID:   fmt.Sprintf("gpbft-sim-%d-anchor", s.opts.Seed),
		Timestamp: s.opts.Epoch,
		Policy:    s.opts.policy(),
	}
	g.Policy.Region = bound
	if g.Policy.MaxEndorsers < members {
		g.Policy.MaxEndorsers = members
	}
	for j := 0; j < members; j++ {
		s.anchorKeys[j] = gcrypto.DeterministicKeyPair(anchorKeyBase + j)
		// Delegate j of region j%r lives inside its home region.
		home, err := shard.RegionOf(s.prefixes[j%r])
		if err != nil {
			return err
		}
		s.anchorPos[j] = gridLayout(home, members/r+2)[j/r]
		g.Endorsers = append(g.Endorsers, types.EndorserInfo{
			Address: s.anchorKeys[j].Address(),
			PubKey:  s.anchorKeys[j].Public(),
			Geohash: geo.MustEncode(s.anchorPos[j], geo.CSCPrecision),
		})
	}
	if err := g.Validate(); err != nil {
		return err
	}
	s.anchorGenesis = g

	com, err := consensus.NewCommittee(g.Endorsers)
	if err != nil {
		return err
	}
	s.anchorNodes = make([]*runtime.Node, members)
	s.anchorEng = make([]*pbft.Engine, members)
	for j := 0; j < members; j++ {
		kp := s.anchorKeys[j]
		chain, err := ledger.NewChain(g)
		if err != nil {
			return err
		}
		app := runtime.NewApp(chain, runtime.NewMempoolShards(s.opts.MempoolCap, s.opts.MempoolShards), kp.Address(), s.opts.Epoch, s.opts.BatchSize)
		eng, err := pbft.New(pbft.Config{
			Era:                0,
			Committee:          com,
			Key:                kp,
			App:                app,
			Timers:             consensus.NewTimerAllocator(),
			StartHeight:        1,
			CheckpointInterval: s.opts.CheckpointInterval,
			ViewChangeTimeout:  s.opts.ViewChangeTimeout,
			MaxInFlight:        s.opts.MaxInFlight,
		})
		if err != nil {
			return err
		}
		node := &runtime.Node{
			ID: kp.Address(), Key: kp, App: app, Engine: eng,
			Exec: s.net.Executor(kp.Address()),
		}
		s.net.AddNode(kp.Address(), node)
		s.anchorNodes[j] = node
		s.anchorEng[j] = eng
	}
	s.net.Schedule(0, func(now consensus.Time) {
		for _, n := range s.anchorNodes {
			n.Start(now)
		}
	})
	return nil
}

// --- accessors ---

// Options returns the shard-cluster configuration.
func (s *ShardCluster) Options() Options { return s.opts }

// Net exposes the shared simulator.
func (s *ShardCluster) Net() *simnet.Network { return s.net }

// Metrics returns the shared (cross-region) latency recorder.
func (s *ShardCluster) Metrics() *Metrics { return s.metrics }

// Regions returns the number of geo shards.
func (s *ShardCluster) Regions() int { return len(s.regions) }

// Region returns the consensus cluster of region i.
func (s *ShardCluster) Region(i int) *Cluster { return s.regions[i] }

// Prefix returns region i's geohash prefix (its shard key).
func (s *ShardCluster) Prefix(i int) string { return s.prefixes[i] }

// Router returns the point→region router.
func (s *ShardCluster) Router() *shard.Router { return s.router }

// AnchorSize returns the anchor-committee size.
func (s *ShardCluster) AnchorSize() int { return len(s.anchorNodes) }

// AnchorNode returns anchor member j's runtime node.
func (s *ShardCluster) AnchorNode(j int) *runtime.Node { return s.anchorNodes[j] }

// DelegateOf returns the anchor member indices representing region i.
func (s *ShardCluster) DelegateOf(i int) []int {
	var out []int
	for j := range s.anchorNodes {
		if j%len(s.regions) == i {
			out = append(out, j)
		}
	}
	return out
}

// anchorPeriod resolves the checkpoint pump interval.
func (s *ShardCluster) anchorPeriod() time.Duration {
	if s.opts.AnchorPeriod > 0 {
		return s.opts.AnchorPeriod
	}
	return DefaultAnchorPeriod
}

// --- driving the simulation ---

// Run processes events up to the given virtual time.
func (s *ShardCluster) Run(until time.Duration) { s.net.Run(until) }

// RunUntilIdle processes events until quiescence or the cap.
func (s *ShardCluster) RunUntilIdle(cap time.Duration) { s.net.RunUntilIdle(cap) }

// Now returns the current virtual time.
func (s *ShardCluster) Now() time.Duration { return s.net.Now() }

// StartAnchors schedules the hierarchical pump: every AnchorPeriod up
// to `until`, live delegates emit region checkpoints to the anchor
// committee and destination regions apply newly anchored transfer
// receipts. Call it once, before Run/RunUntilIdle.
func (s *ShardCluster) StartAnchors(until time.Duration) {
	period := s.anchorPeriod()
	for at := period; at <= until; at += period {
		s.net.Schedule(at, s.anchorTick)
	}
}

// liveDelegate returns the first non-crashed anchor member representing
// region i, or -1.
func (s *ShardCluster) liveDelegate(i int) int {
	for _, j := range s.DelegateOf(i) {
		if !s.crashedAnchor[j] {
			return j
		}
	}
	return -1
}

// liveRegionNode returns the first non-crashed node index in region i,
// or -1.
func (s *ShardCluster) liveRegionNode(i int) int {
	for k := 0; k < s.regions[i].NodeCount(); k++ {
		if !s.crashedRegion[i][k] {
			return k
		}
	}
	return -1
}

// liveEndorserNode returns the first non-crashed node of region i whose
// identity the region chain currently admits as an endorser, or -1.
// Receipt applies must come from endorsers, so the pump submits them
// through a committee member.
func (s *ShardCluster) liveEndorserNode(i int) int {
	cl := s.regions[i]
	for k := 0; k < cl.NodeCount(); k++ {
		if s.crashedRegion[i][k] {
			continue
		}
		if cl.Node(k).App.Chain().IsEndorser(cl.Address(k)) {
			return k
		}
	}
	return -1
}

// anchorTick is one pump round. All chain reads are delegate-local:
// a region's checkpoint is built by its own delegate from its own
// region's chain, and a destination region discovers anchored receipts
// through its own delegate's replica of the anchor chain — a partition
// that cuts a region off therefore stalls exactly that region's
// checkpoints and applies, nothing else.
func (s *ShardCluster) anchorTick(now consensus.Time) {
	for i := range s.regions {
		j := s.liveDelegate(i)
		if j < 0 {
			continue
		}
		s.emitCheckpoint(now, i, j)
		s.applyAnchored(now, i, j)
	}
}

// emitCheckpoint has delegate j attest region i's current head to the
// anchor committee, carrying every outbound receipt not yet covered by
// the last checkpoint the delegate has seen anchored.
func (s *ShardCluster) emitCheckpoint(now consensus.Time, i, j int) {
	k := s.liveRegionNode(i)
	if k < 0 {
		return
	}
	chain := s.regions[i].Node(k).App.Chain()
	head := chain.Head()
	if head.Header.Height == 0 {
		return
	}
	var since uint64
	if pt, ok := s.anchorNodes[j].App.Chain().AnchorLatest(s.prefixes[i]); ok {
		if pt.Height >= head.Header.Height {
			return // already anchored up to (or past) the head the delegate sees
		}
		since = pt.Height
	}
	// Keep only receipts sourced in this region. The chain already
	// refuses foreign-source locks, so this is defense in depth: a
	// single foreign receipt would make RegionCheckpoint.Validate
	// reject every future checkpoint and stall the region's transfers.
	receipts := chain.OutboundReceipts(since)
	kept := receipts[:0]
	for _, rc := range receipts {
		if rc.Source == s.prefixes[i] {
			kept = append(kept, rc)
		}
	}
	cp := &shard.RegionCheckpoint{
		Region:   s.prefixes[i],
		Era:      head.Header.Era,
		Height:   head.Header.Height,
		Root:     head.Hash(),
		Receipts: kept,
	}
	s.anchorNonces[j]++
	tx := &types.Transaction{
		Type:    types.TxRegionCheckpoint,
		Nonce:   s.anchorNonces[j],
		Payload: shard.EncodeCheckpoint(cp),
		Fee:     1,
		Geo: types.GeoInfo{
			Location:  s.anchorPos[j],
			Timestamp: s.opts.Epoch.Add(now),
		},
	}
	tx.Sign(s.anchorKeys[j])
	_ = s.anchorNodes[j].Submit(now, tx)
}

// applyAnchored walks the receipts delegate j's anchor replica has
// committed and hands every one destined for region i that is not yet
// applied there to a live region node. Submissions are retried after a
// few quiet periods — a crashed entry node or an in-flight partition
// must lose no receipt — and application itself is idempotent per
// receipt ID, so a retry that races a slow commit is a counted no-op.
func (s *ShardCluster) applyAnchored(now consensus.Time, i, j int) {
	k := s.liveEndorserNode(i)
	if k < 0 {
		return
	}
	dest := s.regions[i]
	chain := dest.Node(k).App.Chain()
	retryAfter := 4 * consensus.Time(s.anchorPeriod())
	for _, rc := range s.anchorNodes[j].App.Chain().AnchorReceipts() {
		if rc.Dest != s.prefixes[i] {
			continue
		}
		if _, done := chain.ReceiptApplied(rc.ID); done {
			continue
		}
		if at, pending := s.applySubmitted[rc.ID]; pending && now-at < retryAfter {
			continue
		}
		tx := dest.NewTypedNodeTx(k, time.Duration(now), types.TxTransferApply, shard.EncodeReceipt(&rc), 1)
		if err := dest.Node(k).Submit(now, tx); err == nil {
			s.applySubmitted[rc.ID] = now
		}
	}
}

// --- workload ---

// RegionFor routes a point to its region index.
func (s *ShardCluster) RegionFor(p geo.Point) (int, bool) { return s.router.Route(p) }

// SubmitNodeTx schedules a data transaction from node `node` of region
// `region` at virtual time `at`, starting the shared latency clock.
func (s *ShardCluster) SubmitNodeTx(at time.Duration, region, node int, payload []byte, fee uint64) *types.Transaction {
	return s.regions[region].SubmitNodeTx(at, node, payload, fee)
}

// SubmitTransfer schedules a cross-region transfer: node `via` of the
// source region locks `amount` for `recipient` in the destination
// region. The credit lands only after the anchor has committed a
// source checkpoint covering the minted receipt and the destination
// has applied it.
func (s *ShardCluster) SubmitTransfer(at time.Duration, source, via, dest int, recipient gcrypto.Address, amount uint64) (*types.Transaction, error) {
	if source == dest {
		return nil, errors.New("gpbft: transfer source and destination regions must differ")
	}
	payload := shard.EncodeTransfer(&shard.Transfer{
		Source:    s.prefixes[source],
		Dest:      s.prefixes[dest],
		Recipient: recipient,
		Amount:    amount,
	})
	cl := s.regions[source]
	tx := cl.NewTypedNodeTx(via, at, types.TxTransferLock, payload, 1)
	cl.SubmitTx(at, via, tx)
	s.transfers++
	return tx, nil
}

// TransfersSubmitted returns how many cross-region transfers were
// injected through SubmitTransfer.
func (s *ShardCluster) TransfersSubmitted() int { return s.transfers }

// TransfersApplied counts receipts applied across all destination
// regions, read from each region's first live node.
func (s *ShardCluster) TransfersApplied() int {
	total := 0
	for i := range s.regions {
		k := s.liveRegionNode(i)
		if k < 0 {
			k = 0
		}
		total += s.regions[i].Node(k).App.Chain().AppliedReceiptCount()
	}
	return total
}

// --- fault injection ---

// CrashRegionNode fail-stops node `node` of region `region`.
func (s *ShardCluster) CrashRegionNode(region, node int) {
	s.crashedRegion[region][node] = true
	s.net.Crash(s.regions[region].Address(node))
}

// RecoverRegionNode brings a crashed region node back, memory intact.
func (s *ShardCluster) RecoverRegionNode(region, node int) {
	delete(s.crashedRegion[region], node)
	s.net.Recover(s.regions[region].Address(node))
}

// CrashDelegate fail-stops anchor member j.
func (s *ShardCluster) CrashDelegate(j int) {
	s.crashedAnchor[j] = true
	s.net.Crash(s.anchorKeys[j].Address())
}

// RecoverDelegate brings a crashed anchor member back, memory intact.
func (s *ShardCluster) RecoverDelegate(j int) {
	delete(s.crashedAnchor, j)
	s.net.Recover(s.anchorKeys[j].Address())
}

// regionAddrs returns every simnet address physically inside region i:
// its consensus nodes and its anchor delegates.
func (s *ShardCluster) regionAddrs(i int) []gcrypto.Address {
	var out []gcrypto.Address
	for k := 0; k < s.regions[i].NodeCount(); k++ {
		out = append(out, s.regions[i].Address(k))
	}
	for _, j := range s.DelegateOf(i) {
		out = append(out, s.anchorKeys[j].Address())
	}
	return out
}

// allAddrs returns every simnet address in the deployment.
func (s *ShardCluster) allAddrs() []gcrypto.Address {
	var out []gcrypto.Address
	for i := range s.regions {
		for k := 0; k < s.regions[i].NodeCount(); k++ {
			out = append(out, s.regions[i].Address(k))
		}
	}
	for j := range s.anchorKeys {
		out = append(out, s.anchorKeys[j].Address())
	}
	return out
}

// IsolateRegion partitions region i — its consensus nodes AND its
// anchor delegates, which live inside it — from the rest of the world.
// Intra-region consensus keeps committing; checkpoints and transfers
// involving the region stall until HealRegion.
func (s *ShardCluster) IsolateRegion(i int) {
	inside := make(map[gcrypto.Address]bool)
	for _, a := range s.regionAddrs(i) {
		inside[a] = true
	}
	for _, a := range s.regionAddrs(i) {
		for _, b := range s.allAddrs() {
			if !inside[b] {
				s.net.Partition(a, b)
			}
		}
	}
	s.isolated[i] = true
}

// HealRegion removes an IsolateRegion partition.
func (s *ShardCluster) HealRegion(i int) {
	for _, a := range s.regionAddrs(i) {
		for _, b := range s.allAddrs() {
			s.net.Heal(a, b)
		}
	}
	delete(s.isolated, i)
}

// --- invariants ---

// VerifyAgreement checks safety across the whole hierarchy: every
// region's nodes agree on their shared heights, the anchor replicas
// agree on theirs, and every anchored region root matches the block
// actually committed at that height in that region. It returns the
// minimum committed height across regions.
func (s *ShardCluster) VerifyAgreement() (uint64, error) {
	minH := uint64(math.MaxUint64)
	for i, cl := range s.regions {
		h, err := cl.VerifyAgreement()
		if err != nil {
			return 0, fmt.Errorf("region %d (%s): %w", i, s.prefixes[i], err)
		}
		if h < minH {
			minH = h
		}
	}
	// Anchor replicas: pairwise agreement with member 0 on shared heights.
	ref := s.anchorNodes[0].App.Chain()
	for j, n := range s.anchorNodes {
		if n.CommitErr != nil {
			return 0, fmt.Errorf("anchor member %d commit error: %w", j, n.CommitErr)
		}
		limit := n.App.Chain().Height()
		if rh := ref.Height(); rh < limit {
			limit = rh
		}
		for k := uint64(1); k <= limit; k++ {
			a, err := ref.BlockAt(k)
			if err != nil {
				return 0, err
			}
			b, err := n.App.Chain().BlockAt(k)
			if err != nil {
				return 0, err
			}
			if a.Hash() != b.Hash() {
				return 0, fmt.Errorf("anchor member %d disagrees with member 0 at height %d", j, k)
			}
		}
	}
	// Anchored roots match the regions' actual history.
	for i, cl := range s.regions {
		pt, ok := ref.AnchorLatest(s.prefixes[i])
		if !ok {
			continue
		}
		b, err := cl.Node(0).App.Chain().BlockAt(pt.Height)
		if err != nil {
			continue // compacted away; covered by per-region agreement
		}
		if b.Hash() != pt.Root {
			return 0, fmt.Errorf("anchor root for region %d (%s) at height %d does not match the region's chain", i, s.prefixes[i], pt.Height)
		}
	}
	return minH, nil
}

// MaxHeight returns the highest committed height across all regions.
func (s *ShardCluster) MaxHeight() uint64 {
	var max uint64
	for _, cl := range s.regions {
		if h := cl.MaxHeight(); h > max {
			max = h
		}
	}
	return max
}

// AnchorHeight returns the highest committed height across anchor
// replicas.
func (s *ShardCluster) AnchorHeight() uint64 {
	var max uint64
	for _, n := range s.anchorNodes {
		if h := n.App.Chain().Height(); h > max {
			max = h
		}
	}
	return max
}
